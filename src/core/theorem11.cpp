#include "core/theorem11.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include "congest/primitives.h"
#include "graph/algorithms.h"
#include "paths/distributed.h"
#include "paths/reference.h"
#include "quantum/framework.h"
#include "quantum/search.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

namespace qc::core {

namespace {

constexpr std::int64_t kMinusInf = std::numeric_limits<std::int64_t>::min() / 4;
constexpr std::int64_t kPlusInf = std::numeric_limits<std::int64_t>::max() / 4;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// f(i) for one set from its members' approximate eccentricities: the
/// max (diameter) or min (radius), as a signed scaled value.
std::int64_t set_value_from_eccs(const std::vector<Dist>& eccs, bool radius) {
  std::int64_t best = radius ? kPlusInf : kMinusInf;
  for (const Dist e : eccs) {
    if (e >= kInfDist) {
      // Approximation failed to cover some node (the w.h.p. event of
      // Lemma 3.3 not holding for this set); treat as worst value.
      if (!radius) return kMinusInf;
      continue;
    }
    const auto se = static_cast<std::int64_t>(e);
    best = radius ? std::min(best, se) : std::max(best, se);
  }
  return best;
}

/// Index (into the set) achieving f(i). Ties go to the lowest index for
/// both directions — the same convention the Dürr–Høyer search induces
/// (its threshold predicate is strict, so an equal value never displaces
/// an earlier winner). Pinned by the ties regression test.
std::uint32_t set_arg_from_eccs(const std::vector<Dist>& eccs, bool radius) {
  std::uint32_t arg = 0;
  for (std::uint32_t s = 1; s < eccs.size(); ++s) {
    const bool better = radius ? (eccs[s] < eccs[arg]) : (eccs[s] > eccs[arg]);
    if (better) arg = s;
  }
  return arg;
}

std::vector<Dist> skeleton_eccs(const paths::Skeleton& sk) {
  std::vector<Dist> eccs(sk.size());
  for (std::uint32_t s = 0; s < sk.size(); ++s) {
    eccs[s] = sk.approx_eccentricity(s);
  }
  return eccs;
}

/// Eq. (1) parameters for the estimate d̂, with the option overrides
/// applied — shared by run() and the public derive_params so a resident
/// ToolkitCache is guaranteed to agree with the driver.
paths::Params params_for(NodeId n, std::uint64_t d_hat,
                         const Theorem11Options& opt) {
  auto params = paths::Params::make(n, d_hat, opt.eps_inv);
  if (opt.r_override != 0) {
    params.r = std::clamp<std::uint64_t>(opt.r_override, 1, n);
    params.ell = std::clamp<std::uint64_t>(
        ceil_div(std::uint64_t{n} * params.eps_inv, params.r), 1, n);
  }
  return params;
}

bool params_equal(const paths::Params& x, const paths::Params& y) {
  return x.n == y.n && x.unweighted_diameter == y.unweighted_diameter &&
         x.eps_inv == y.eps_inv && x.r == y.r && x.ell == y.ell && x.k == y.k;
}

Theorem11Result run(const WeightedGraph& g, bool radius,
                    const Theorem11Options& opt) {
  const NodeId n = g.node_count();
  QC_REQUIRE(n >= 2, "Theorem 1.1 needs n >= 2");
  QC_REQUIRE(g.is_connected(), "Theorem 1.1 needs a connected network");

  const auto t_run = Clock::now();
  Rng rng(opt.seed);
  Theorem11Result out;
  out.radius = radius;
  const bool lazy = opt.oracle_mode == OracleMode::kLazySerial ||
                    opt.oracle_mode == OracleMode::kLazyPooled;
  const bool pooled = opt.oracle_mode == OracleMode::kEagerPooled ||
                      opt.oracle_mode == OracleMode::kLazyPooled;
  out.oracle.lazy = lazy;
  out.oracle.pooled = pooled;

  // ---- Preamble: the leader estimates the unweighted diameter D by a
  // BFS + depth convergecast (ecc(leader) <= D <= 2·ecc(leader)).
  const auto bfs = congest::build_bfs_tree(g, 0);
  std::vector<std::uint64_t> depths(n);
  for (NodeId v = 0; v < n; ++v) depths[v] = bfs.nodes[v].depth;
  const auto agg = congest::global_aggregate(
      g, 0, depths, congest::AggregateOp::kMax, bits_for(n));
  out.d_hat = std::max<std::uint64_t>(1, agg.value);
  out.t0_outer = bfs.stats.rounds + agg.stats.rounds;

  out.params = params_for(n, out.d_hat, opt);
  out.epsilon = out.params.epsilon();

  // ---- Sample the n vertex sets (local coins; free in rounds).
  // Geometric skip sampling (Rng::sample_indices): per-set joint
  // distribution identical to n independent Bernoulli(p) coins, but the
  // stream consumes one uniform per *member* plus one per set, so the
  // sampled sets for a given seed differ from the historical per-node
  // coin loop. Every oracle mode consumes the stream identically, so
  // results stay mode- and worker-count-invariant for a fixed seed.
  const double p = static_cast<double>(out.params.r) / n;
  std::vector<std::vector<NodeId>> sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    sets[i] = rng.sample_indices(n, p);
  }

  // ---- Scale-only pass: σ·σ″ depends on |S_i| alone (Params::
  // total_scale), so the common renormalization scale needs no skeleton.
  std::vector<std::uint64_t> total_scales(n, 0);
  std::uint64_t max_scale = 1;
  std::vector<NodeId> member_union;
  for (std::size_t i = 0; i < n; ++i) {
    if (sets[i].empty()) continue;
    ++out.oracle.sets_nonempty;
    total_scales[i] = out.params.total_scale(sets[i].size());
    max_scale = std::max(max_scale, total_scales[i]);
    member_union.insert(member_union.end(), sets[i].begin(), sets[i].end());
  }
  out.total_scale = max_scale;

  // All non-empty sets share ℓ and ε, but σ″ depends on |S_i|, so scaled
  // values are only comparable after normalizing to the *maximum* total
  // scale — exact integer rescaling when it divides, else rounded
  // against the search direction so the sandwich guarantee survives.
  const auto renorm = [&](std::int64_t raw,
                          std::uint64_t scale) -> std::int64_t {
    if (raw == kMinusInf || raw == kPlusInf) return raw;
    std::uint64_t val;
    if (max_scale % scale == 0) {
      val = static_cast<std::uint64_t>(raw) * (max_scale / scale);
    } else {
      // raw, max_scale, scale are all < 2^50; the long double product
      // keeps the error below one unit.
      const long double exactv = static_cast<long double>(raw) *
                                 static_cast<long double>(max_scale) /
                                 static_cast<long double>(scale);
      val = static_cast<std::uint64_t>(radius ? std::ceil(exactv)
                                              : std::floor(exactv));
    }
    return static_cast<std::int64_t>(val);
  };
  out.phase_seconds.sample = seconds_since(t_run);

  // ---- Bookkeeping backend: f(i) through the oracle-mode strategy.
  // A resident cache (Theorem11Options::toolkit) replaces the per-run
  // construction when its identity matches; its already-published rows
  // carry over to this run and rows built here persist for the next.
  const auto t_oracle = Clock::now();
  std::optional<paths::ToolkitCache> owned_cache;
  if (opt.toolkit != nullptr) {
    QC_REQUIRE(&opt.toolkit->graph() == &g,
               "Theorem11Options::toolkit was built for a different graph");
    QC_REQUIRE(params_equal(opt.toolkit->params(), out.params),
               "Theorem11Options::toolkit params disagree with "
               "derive_params(g, opt) — rebuild the resident cache");
  } else {
    owned_cache.emplace(g, out.params);
  }
  paths::ToolkitCache& cache = opt.toolkit ? *opt.toolkit : *owned_cache;
  std::optional<runtime::ThreadPool> pool;
  if (pooled) pool.emplace(opt.oracle_workers);

  // Batched prefetch: every evaluation reads only first-level rows of
  // its members, and the amplitude-exact search touches every set, so
  // fill the union's rows once — chunked across the pool when present.
  cache.ensure_rows(member_union, pool ? &*pool : nullptr);

  std::vector<paths::Skeleton> skeletons;  // eager modes only
  std::vector<std::int64_t> prefill(n, 0);
  std::vector<char> prefilled(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (sets[i].empty()) {
      prefill[i] = radius ? kPlusInf : kMinusInf;
      prefilled[i] = 1;
    }
  }

  std::uint64_t batched_evals = 0;
  if (!lazy) {
    // Eager: build every skeleton and read f(i) off it (the historical
    // behaviour; kept as the bench baseline and as the equivalence
    // anchor for the lazy modes).
    skeletons.resize(n);
    const auto eval_eager = [&](std::size_t i) {
      if (sets[i].empty()) return;
      skeletons[i] = cache.skeleton(sets[i]);
      prefill[i] = renorm(set_value_from_eccs(skeleton_eccs(skeletons[i]),
                                              radius),
                          skeletons[i].total_scale());
      prefilled[i] = 1;
    };
    if (pooled) {
      runtime::parallel_for(*pool, n, eval_eager);
    } else {
      for (std::size_t i = 0; i < n; ++i) eval_eager(i);
    }
    out.oracle.skeletons_built += out.oracle.sets_nonempty;
  } else if (opt.oracle_mode == OracleMode::kLazyPooled) {
    // Batched pooled value pass: the search's amplitude bookkeeping
    // reads every index anyway, so evaluate all sets up front in
    // index-ordered slots (one trimmed-evaluation workspace per chunk)
    // and hand the memoized oracle a full cache. No skeleton is built.
    std::vector<std::size_t> work;
    for (std::size_t i = 0; i < n; ++i) {
      if (!sets[i].empty()) work.push_back(i);
    }
    if (!work.empty()) {
      const std::size_t chunk_count = std::min<std::size_t>(
          work.size(), static_cast<std::size_t>(pool->worker_count()) * 4);
      runtime::parallel_for(*pool, chunk_count, [&](std::size_t c) {
        paths::SetEvalWorkspace ws;
        const std::size_t lo = work.size() * c / chunk_count;
        const std::size_t hi = work.size() * (c + 1) / chunk_count;
        for (std::size_t w = lo; w < hi; ++w) {
          const std::size_t i = work[w];
          const auto ev = cache.evaluate_set(sets[i], ws);
          prefill[i] = renorm(set_value_from_eccs(ev.member_ecc, radius),
                              ev.total_scale);
          prefilled[i] = 1;
        }
      });
    }
    batched_evals = work.size();
  }
  // kLazySerial: nothing up front — the oracle callback below evaluates
  // on demand with a single reused workspace.

  paths::SetEvalWorkspace serial_ws;
  quantum::LazyOracle oracle(n, [&](std::size_t i) -> std::int64_t {
    if (sets[i].empty()) return radius ? kPlusInf : kMinusInf;
    const auto ev = cache.evaluate_set(sets[i], serial_ws);
    return renorm(set_value_from_eccs(ev.member_ecc, radius),
                  ev.total_scale);
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (prefilled[i]) oracle.prefill(i, prefill[i]);
  }
  out.phase_seconds.oracle = seconds_since(t_oracle);

  // ---- Outer quantum search over i ∈ [1, n].
  const auto t_search = Clock::now();
  quantum::LazyOptimizationProblem outer;
  outer.oracle = &oracle;
  outer.weights.assign(n, 1.0);
  outer.rho = static_cast<double>(std::max<std::uint64_t>(1, out.params.r)) /
              static_cast<double>(n);
  outer.delta = opt.delta;
  // Costs are attached after measuring (they do not influence the
  // search trajectory, only the charged rounds).
  Rng search_rng = rng.fork();
  const auto outer_res = radius
                             ? quantum::framework_minimize(outer, search_rng)
                             : quantum::framework_maximize(outer, search_rng);
  out.chosen_set = outer_res.index;
  out.estimate_scaled = static_cast<Dist>(outer_res.value);
  out.outer_calls = outer_res.oracle_calls;

  // The measured set must be non-empty to cost the inner procedures; if
  // the search landed on an empty set (pathological tiny-n case), fall
  // back to the best non-empty one.
  if (sets[out.chosen_set].empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!sets[i].empty()) {
        out.chosen_set = i;
        out.estimate_scaled = static_cast<Dist>(oracle.value(i));
        break;
      }
    }
    QC_CHECK(!sets[out.chosen_set].empty(),
             "all sampled sets were empty — n too small for Eq. (1)");
  }
  const auto& chosen = sets[out.chosen_set];
  out.chosen_set_size = chosen.size();
  out.phase_seconds.search = seconds_since(t_search);

  // ---- Materialize the chosen set's skeleton (the only one the lazy
  // modes ever build) and cross-check it against the oracle's value.
  const auto t_measure = Clock::now();
  paths::Skeleton lazy_sk;
  if (lazy) {
    lazy_sk = cache.skeleton(chosen);
    out.oracle.skeletons_built += 1;
  }
  const paths::Skeleton& sk = lazy ? lazy_sk : skeletons[out.chosen_set];
  QC_CHECK(sk.total_scale() == total_scales[out.chosen_set],
           "scale-only pass disagrees with the built skeleton");
  const std::vector<Dist> chosen_eccs = skeleton_eccs(sk);
  QC_CHECK(renorm(set_value_from_eccs(chosen_eccs, radius),
                  sk.total_scale()) == oracle.value(out.chosen_set),
           "trimmed oracle evaluation disagrees with the built skeleton");

  // ---- Measure the Lemma 3.5 procedures on the chosen set, genuinely
  // distributed.
  {
    // Initialization_i: flood S_i (so every node knows the sources),
    // Algorithm 3, Algorithm 4.
    std::vector<std::vector<congest::FloodItem>> items(n);
    const std::uint32_t id_bits = bits_for(n);
    for (const NodeId s : chosen) {
      congest::FloodItem it;
      it.push(s, id_bits);
      items[s].push_back(std::move(it));
    }
    const auto flood = congest::flood_items(
        g, std::move(items), {}, congest::FloodCollect::kStatsOnly);

    const paths::HopScale hs{out.params.ell, out.params.eps_inv,
                             g.max_weight()};
    Rng delays = rng.fork();
    const auto ms = paths::distributed_multi_source_bhs(
        g, paths::RunRequest{}.with_sources(chosen).with_scale(hs).with_rng(
               delays));
    const auto emb = paths::distributed_embed_overlay(
        g, ms.approx,
        paths::RunRequest{}.with_sources(chosen).with_params(out.params));
    out.measured.t0_rounds =
        flood.stats.rounds + ms.stats.rounds + emb.stats.rounds;

    // Setup_i: leader collects S_i and broadcasts the superposition via
    // CNOT copies (O(D + r): model as one aggregate round trip), then
    // Algorithm 5 for the measured source.
    const std::uint32_t s_idx = set_arg_from_eccs(chosen_eccs, radius);
    out.witness = sk.members[s_idx];
    std::vector<std::uint64_t> zeros(n, 0);
    const auto sync = congest::global_aggregate(
        g, 0, zeros, congest::AggregateOp::kMax, 1);
    const auto alg5 = paths::distributed_overlay_sssp(
        g, emb,
        paths::RunRequest{}.with_params(out.params).with_overlay_source(
            s_idx));
    out.measured.t_setup_rounds = sync.stats.rounds + alg5.stats.rounds;

    // Evaluation_i: each node locally combines d̃″(s,u) + σ″·d̃^ℓ(u,v)
    // and the leader converge-casts the max (min handled by the outer
    // bookkeeping; the convergecast cost is identical).
    const std::uint64_t sigma2 = sk.overlay_scale.sigma();
    std::vector<std::uint64_t> local(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      Dist best = kInfDist;
      for (std::uint32_t u = 0; u < sk.size(); ++u) {
        const Dist leg = ms.approx[u][v];
        const Dist through = dist_add(
            alg5.approx[u], leg >= kInfDist ? kInfDist : leg * sigma2);
        best = std::min(best, through);
      }
      local[v] = best >= kInfDist ? 0 : best;
    }
    const std::uint32_t val_bits =
        std::min<std::uint32_t>(63, bits_for(*std::max_element(
                                        local.begin(), local.end()) + 2));
    const auto eval = congest::global_aggregate(
        g, 0, local, congest::AggregateOp::kMax, val_bits);
    out.measured.t_eval_rounds = eval.stats.rounds;

    if (opt.validate_distributed) {
      // The distributed evaluation of ẽ(s*) must equal the bookkeeping
      // value bit for bit.
      const Dist ref_e = chosen_eccs[s_idx];
      out.distributed_value_matches = (eval.value == ref_e);
      // And Algorithm 3's rows must match the cached reference rows.
      for (std::size_t a = 0;
           a < chosen.size() && out.distributed_value_matches; ++a) {
        if (ms.approx[a] != cache.approx_row(chosen[a])) {
          out.distributed_value_matches = false;
        }
      }
    }
  }

  // ---- Charge rounds per Lemma 3.1, nested.
  out.inner_budget_calls = quantum::lemma31_budget(
      1.0 / static_cast<double>(std::max<std::size_t>(1, chosen.size())),
      opt.delta);
  out.t2_outer = out.measured.t0_rounds +
                 out.inner_budget_calls *
                     (out.measured.t_setup_rounds + out.measured.t_eval_rounds);
  // Outer Setup: the leader broadcasts the index superposition — O(D);
  // measured as the BFS-tree depth wave we already ran.
  out.t1_outer = bfs.stats.rounds;
  out.rounds =
      out.t0_outer + out.outer_calls * (out.t1_outer + out.t2_outer);
  out.estimate =
      static_cast<double>(out.estimate_scaled) / static_cast<double>(max_scale);
  out.phase_seconds.measure = seconds_since(t_measure);

  // ---- Ground-truth census (opt-in): exact oracle answer, sandwich
  // check, and the Lemma 3.4 good-set count. The default run never pays
  // for the all-pairs oracle; without the census, `exact`, `ratio`,
  // `within_bound` and `good_sets` keep their zero defaults.
  if (opt.census) {
    const auto t_census = Clock::now();
    out.exact = radius ? weighted_radius(g) : weighted_diameter(g);
    const auto target = static_cast<std::int64_t>(out.exact * max_scale);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t fi = oracle.value(i);
      if (fi == kMinusInf || fi == kPlusInf) continue;
      if ((radius && fi <= target) || (!radius && fi >= target)) {
        ++out.good_sets;
      }
    }
    out.ratio = out.estimate / static_cast<double>(out.exact);
    const double bound =
        (1.0 + out.epsilon) * (1.0 + out.epsilon) + 1e-12;
    out.within_bound = out.ratio >= 1.0 - 1e-12 && out.ratio <= bound;
    out.phase_seconds.census = seconds_since(t_census);
  }

  out.oracle.value_evaluations = oracle.evaluations() + batched_evals;
  out.oracle.memo_hits = oracle.hits();
  out.phase_seconds.total = seconds_since(t_run);

  if (opt.metrics != nullptr) {
    auto& m = *opt.metrics;
    m.counter("theorem11.runs").add();
    m.counter("theorem11.skeletons_built").add(out.oracle.skeletons_built);
    m.counter("theorem11.value_evaluations")
        .add(out.oracle.value_evaluations);
    m.counter("theorem11.memo_hits").add(out.oracle.memo_hits);
    m.counter("theorem11.sets_nonempty").add(out.oracle.sets_nonempty);
    m.counter("theorem11.outer_calls").add(out.outer_calls);
    m.gauge("theorem11.phase.sample_seconds").set(out.phase_seconds.sample);
    m.gauge("theorem11.phase.oracle_seconds").set(out.phase_seconds.oracle);
    m.gauge("theorem11.phase.search_seconds").set(out.phase_seconds.search);
    m.gauge("theorem11.phase.measure_seconds")
        .set(out.phase_seconds.measure);
    m.gauge("theorem11.phase.census_seconds").set(out.phase_seconds.census);
    m.gauge("theorem11.phase.total_seconds").set(out.phase_seconds.total);
  }
  return out;
}

}  // namespace

bool semantically_equal(const Theorem11Result& a, const Theorem11Result& b) {
  const auto params_equal = [](const paths::Params& x,
                               const paths::Params& y) {
    return x.n == y.n && x.unweighted_diameter == y.unweighted_diameter &&
           x.eps_inv == y.eps_inv && x.r == y.r && x.ell == y.ell &&
           x.k == y.k;
  };
  const auto measured_equal = [](const MeasuredSetCosts& x,
                                 const MeasuredSetCosts& y) {
    return x.t0_rounds == y.t0_rounds &&
           x.t_setup_rounds == y.t_setup_rounds &&
           x.t_eval_rounds == y.t_eval_rounds;
  };
  return a.radius == b.radius && a.estimate_scaled == b.estimate_scaled &&
         a.total_scale == b.total_scale && a.estimate == b.estimate &&
         a.exact == b.exact && a.ratio == b.ratio &&
         a.within_bound == b.within_bound && a.good_sets == b.good_sets &&
         a.epsilon == b.epsilon && a.rounds == b.rounds &&
         a.t0_outer == b.t0_outer && a.t1_outer == b.t1_outer &&
         a.t2_outer == b.t2_outer && a.outer_calls == b.outer_calls &&
         a.inner_budget_calls == b.inner_budget_calls &&
         measured_equal(a.measured, b.measured) &&
         params_equal(a.params, b.params) && a.d_hat == b.d_hat &&
         a.chosen_set == b.chosen_set &&
         a.chosen_set_size == b.chosen_set_size && a.witness == b.witness &&
         a.distributed_value_matches == b.distributed_value_matches;
}

std::uint64_t leader_diameter_estimate(const WeightedGraph& g) {
  QC_REQUIRE(g.node_count() >= 2, "Theorem 1.1 needs n >= 2");
  QC_REQUIRE(g.is_connected(), "Theorem 1.1 needs a connected network");
  const auto depths = bfs_distances(g, 0);
  Dist ecc = 0;
  for (const Dist d : depths) ecc = std::max(ecc, d);
  return std::max<std::uint64_t>(1, ecc);
}

paths::Params derive_params(const WeightedGraph& g,
                            const Theorem11Options& opt) {
  return params_for(g.node_count(), leader_diameter_estimate(g), opt);
}

Theorem11Result quantum_weighted_diameter(const WeightedGraph& g,
                                          const Theorem11Options& opt) {
  return run(g, false, opt);
}

Theorem11Result quantum_weighted_radius(const WeightedGraph& g,
                                        const Theorem11Options& opt) {
  return run(g, true, opt);
}

}  // namespace qc::core
