#include "core/theorem11.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "congest/primitives.h"
#include "graph/algorithms.h"
#include "paths/distributed.h"
#include "paths/reference.h"
#include "quantum/framework.h"
#include "quantum/search.h"

namespace qc::core {

namespace {

constexpr std::int64_t kMinusInf = std::numeric_limits<std::int64_t>::min() / 4;
constexpr std::int64_t kPlusInf = std::numeric_limits<std::int64_t>::max() / 4;

/// f(i) for one set: max (diameter) or min (radius) of the approximate
/// eccentricities of its members, as a signed scaled value.
std::int64_t set_value(const paths::Skeleton& sk, bool radius) {
  std::int64_t best = radius ? kPlusInf : kMinusInf;
  for (std::uint32_t s = 0; s < sk.size(); ++s) {
    const Dist e = sk.approx_eccentricity(s);
    if (e >= kInfDist) {
      // Approximation failed to cover some node (the w.h.p. event of
      // Lemma 3.3 not holding for this set); treat as worst value.
      if (!radius) return kMinusInf;
      continue;
    }
    const auto se = static_cast<std::int64_t>(e);
    best = radius ? std::min(best, se) : std::max(best, se);
  }
  return best;
}

/// Index (into sk.members) achieving f(i); requires a finite value.
std::uint32_t set_arg(const paths::Skeleton& sk, bool radius) {
  std::uint32_t arg = 0;
  Dist best = radius ? kInfDist : 0;
  for (std::uint32_t s = 0; s < sk.size(); ++s) {
    const Dist e = sk.approx_eccentricity(s);
    const bool better = radius ? (e < best) : (e >= best);
    if (s == 0 || better) {
      best = e;
      arg = s;
    }
  }
  return arg;
}

Theorem11Result run(const WeightedGraph& g, bool radius,
                    const Theorem11Options& opt) {
  const NodeId n = g.node_count();
  QC_REQUIRE(n >= 2, "Theorem 1.1 needs n >= 2");
  QC_REQUIRE(g.is_connected(), "Theorem 1.1 needs a connected network");

  Rng rng(opt.seed);
  Theorem11Result out;
  out.radius = radius;

  // ---- Preamble: the leader estimates the unweighted diameter D by a
  // BFS + depth convergecast (ecc(leader) <= D <= 2·ecc(leader)).
  const auto bfs = congest::build_bfs_tree(g, 0);
  std::vector<std::uint64_t> depths(n);
  for (NodeId v = 0; v < n; ++v) depths[v] = bfs.nodes[v].depth;
  const auto agg = congest::global_aggregate(
      g, 0, depths, congest::AggregateOp::kMax, bits_for(n));
  out.d_hat = std::max<std::uint64_t>(1, agg.value);
  out.t0_outer = bfs.stats.rounds + agg.stats.rounds;

  out.params = paths::Params::make(n, out.d_hat, opt.eps_inv);
  if (opt.r_override != 0) {
    out.params.r = std::clamp<std::uint64_t>(opt.r_override, 1, n);
    out.params.ell = std::clamp<std::uint64_t>(
        ceil_div(std::uint64_t{n} * out.params.eps_inv, out.params.r), 1, n);
  }
  out.epsilon = out.params.epsilon();

  // ---- Sample the n vertex sets (local coins; free in rounds).
  const double p = static_cast<double>(out.params.r) / n;
  std::vector<std::vector<NodeId>> sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      if (rng.chance(p)) sets[i].push_back(v);
    }
  }

  // ---- Bookkeeping backend: f(i) for all sets via the shared cache.
  paths::ToolkitCache cache(g, out.params);
  std::vector<std::int64_t> f(n);
  std::vector<paths::Skeleton> skeletons(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sets[i].empty()) {
      f[i] = radius ? kPlusInf : kMinusInf;
      continue;
    }
    skeletons[i] = cache.skeleton(sets[i]);
    f[i] = set_value(skeletons[i], radius);

  }

  // All non-empty sets share ℓ and ε, but σ″ depends on |S_i| and the
  // overlay weights, so scaled values are only comparable after
  // normalizing to a common scale. Renormalize every f(i) to the
  // *maximum* total scale via exact integer rescaling.
  std::uint64_t max_scale = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!sets[i].empty()) {
      max_scale = std::max(max_scale, skeletons[i].total_scale());
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (sets[i].empty() || f[i] == kMinusInf || f[i] == kPlusInf) continue;
    const std::uint64_t si = skeletons[i].total_scale();
    std::uint64_t val;
    if (max_scale % si == 0) {
      val = static_cast<std::uint64_t>(f[i]) * (max_scale / si);
    } else {
      // f, max_scale, si are all < 2^50; the long double product keeps
      // the error below one unit, and we round against the search
      // direction so the sandwich guarantee survives renormalization.
      const long double exactv = static_cast<long double>(f[i]) *
                                 static_cast<long double>(max_scale) /
                                 static_cast<long double>(si);
      val = static_cast<std::uint64_t>(radius ? std::ceil(exactv)
                                              : std::floor(exactv));
    }
    f[i] = static_cast<std::int64_t>(val);
  }
  out.total_scale = max_scale;

  // ---- Oracle ground truth (for reporting and the Lemma 3.4 check).
  out.exact = radius ? weighted_radius(g) : weighted_diameter(g);
  const auto target = static_cast<std::int64_t>(out.exact * max_scale);
  for (std::size_t i = 0; i < n; ++i) {
    if (f[i] == kMinusInf || f[i] == kPlusInf) continue;
    if ((radius && f[i] <= target) || (!radius && f[i] >= target)) {
      ++out.good_sets;
    }
  }

  // ---- Outer quantum search over i ∈ [1, n].
  quantum::OptimizationProblem outer;
  outer.values = f;
  outer.weights.assign(n, 1.0);
  outer.rho = static_cast<double>(std::max<std::uint64_t>(1, out.params.r)) /
              static_cast<double>(n);
  outer.delta = opt.delta;
  // Costs are attached after measuring (they do not influence the
  // search trajectory, only the charged rounds).
  Rng search_rng = rng.fork();
  const auto outer_res = radius
                             ? quantum::framework_minimize(outer, search_rng)
                             : quantum::framework_maximize(outer, search_rng);
  out.chosen_set = outer_res.index;
  out.estimate_scaled = static_cast<Dist>(outer_res.value);
  out.outer_calls = outer_res.oracle_calls;

  // The measured set must be non-empty to cost the inner procedures; if
  // the search landed on an empty set (pathological tiny-n case), fall
  // back to the best non-empty one.
  if (sets[out.chosen_set].empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!sets[i].empty()) {
        out.chosen_set = i;
        out.estimate_scaled = static_cast<Dist>(f[i]);
        break;
      }
    }
    QC_CHECK(!sets[out.chosen_set].empty(),
             "all sampled sets were empty — n too small for Eq. (1)");
  }
  const auto& chosen = sets[out.chosen_set];
  const auto& sk = skeletons[out.chosen_set];
  out.chosen_set_size = chosen.size();

  // ---- Measure the Lemma 3.5 procedures on the chosen set, genuinely
  // distributed.
  {
    // Initialization_i: flood S_i (so every node knows the sources),
    // Algorithm 3, Algorithm 4.
    std::vector<std::vector<congest::FloodItem>> items(n);
    const std::uint32_t id_bits = bits_for(n);
    for (const NodeId s : chosen) {
      congest::FloodItem it;
      it.push(s, id_bits);
      items[s].push_back(std::move(it));
    }
    const auto flood = congest::flood_items(g, std::move(items));

    const paths::HopScale hs{out.params.ell, out.params.eps_inv,
                             g.max_weight()};
    Rng delays = rng.fork();
    const auto ms =
        paths::distributed_multi_source_bhs(g, chosen, hs, delays);
    const auto emb =
        paths::distributed_embed_overlay(g, chosen, ms.approx, out.params);
    out.measured.t0_rounds =
        flood.stats.rounds + ms.stats.rounds + emb.stats.rounds;

    // Setup_i: leader collects S_i and broadcasts the superposition via
    // CNOT copies (O(D + r): model as one aggregate round trip), then
    // Algorithm 5 for the measured source.
    const std::uint32_t s_idx = set_arg(sk, radius);
    out.witness = sk.members[s_idx];
    std::vector<std::uint64_t> zeros(n, 0);
    const auto sync = congest::global_aggregate(
        g, 0, zeros, congest::AggregateOp::kMax, 1);
    const auto alg5 =
        paths::distributed_overlay_sssp(g, emb, out.params, s_idx);
    out.measured.t_setup_rounds = sync.stats.rounds + alg5.stats.rounds;

    // Evaluation_i: each node locally combines d̃″(s,u) + σ″·d̃^ℓ(u,v)
    // and the leader converge-casts the max (min handled by the outer
    // bookkeeping; the convergecast cost is identical).
    const std::uint64_t sigma2 = sk.overlay_scale.sigma();
    std::vector<std::uint64_t> local(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      Dist best = kInfDist;
      for (std::uint32_t u = 0; u < sk.size(); ++u) {
        const Dist leg = ms.approx[u][v];
        const Dist through = dist_add(
            alg5.approx[u], leg >= kInfDist ? kInfDist : leg * sigma2);
        best = std::min(best, through);
      }
      local[v] = best >= kInfDist ? 0 : best;
    }
    const std::uint32_t val_bits =
        std::min<std::uint32_t>(63, bits_for(*std::max_element(
                                        local.begin(), local.end()) + 2));
    const auto eval = congest::global_aggregate(
        g, 0, local, congest::AggregateOp::kMax, val_bits);
    out.measured.t_eval_rounds = eval.stats.rounds;

    if (opt.validate_distributed) {
      // The distributed evaluation of ẽ(s*) must equal the bookkeeping
      // value bit for bit.
      const Dist ref_e = sk.approx_eccentricity(s_idx);
      out.distributed_value_matches = (eval.value == ref_e);
      // And Algorithm 3's rows must match the cached reference rows.
      for (std::size_t a = 0;
           a < chosen.size() && out.distributed_value_matches; ++a) {
        if (ms.approx[a] != cache.approx_row(chosen[a])) {
          out.distributed_value_matches = false;
        }
      }
    }
  }

  // ---- Charge rounds per Lemma 3.1, nested.
  out.inner_budget_calls = quantum::lemma31_budget(
      1.0 / static_cast<double>(std::max<std::size_t>(1, chosen.size())),
      opt.delta);
  out.t2_outer = out.measured.t0_rounds +
                 out.inner_budget_calls *
                     (out.measured.t_setup_rounds + out.measured.t_eval_rounds);
  // Outer Setup: the leader broadcasts the index superposition — O(D);
  // measured as the BFS-tree depth wave we already ran.
  out.t1_outer = bfs.stats.rounds;
  out.rounds =
      out.t0_outer + out.outer_calls * (out.t1_outer + out.t2_outer);

  // ---- Report quality.
  out.estimate =
      static_cast<double>(out.estimate_scaled) / static_cast<double>(max_scale);
  out.ratio = out.estimate / static_cast<double>(out.exact);
  const double bound =
      (1.0 + out.epsilon) * (1.0 + out.epsilon) + 1e-12;
  out.within_bound = out.ratio >= 1.0 - 1e-12 && out.ratio <= bound;
  return out;
}

}  // namespace

Theorem11Result quantum_weighted_diameter(const WeightedGraph& g,
                                          const Theorem11Options& opt) {
  return run(g, false, opt);
}

Theorem11Result quantum_weighted_radius(const WeightedGraph& g,
                                        const Theorem11Options& opt) {
  return run(g, true, opt);
}

}  // namespace qc::core
