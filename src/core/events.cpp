#include "core/events.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "paths/reference.h"
#include "util/rng.h"

namespace qc::core {

GoodEventsReport analyze_good_events(const WeightedGraph& g,
                                     std::uint64_t seed, bool radius) {
  const NodeId n = g.node_count();
  QC_REQUIRE(n >= 2 && g.is_connected(),
             "good-events analysis needs a connected graph, n >= 2");

  GoodEventsReport rep;
  rep.params = paths::Params::make(n, std::max<Dist>(1,
                                       unweighted_diameter(g)));
  rep.sets = n;

  Rng rng(seed);
  const double p = static_cast<double>(rep.params.r) / n;
  std::vector<std::vector<NodeId>> sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId v = 0; v < n; ++v) {
      if (rng.chance(p)) sets[i].push_back(v);
    }
  }

  // --- Good-Scale ---
  rep.min_size = n;
  std::size_t total = 0;
  for (const auto& s : sets) {
    if (s.empty()) {
      ++rep.empty_sets;
      continue;
    }
    rep.min_size = std::min(rep.min_size, s.size());
    rep.max_size = std::max(rep.max_size, s.size());
    total += s.size();
  }
  rep.mean_size = static_cast<double>(total) /
                  static_cast<double>(rep.sets - rep.empty_sets);
  const double r = static_cast<double>(rep.params.r);
  rep.scale_ok = rep.empty_sets == 0 &&
                 static_cast<double>(rep.min_size) >= r / 6.0 &&
                 static_cast<double>(rep.max_size) <= 6.0 * r;

  // β: sets containing any node of extreme eccentricity (each such
  // member certifies the set per Lemma 3.4's argument; the paper fixes
  // one v*, but any witness works and ties are common).
  const auto ecc = eccentricities(g);
  const Dist extreme = radius ? *std::min_element(ecc.begin(), ecc.end())
                              : *std::max_element(ecc.begin(), ecc.end());
  for (const auto& s : sets) {
    for (const NodeId v : s) {
      if (ecc[v] == extreme) {
        ++rep.beta;
        break;
      }
    }
  }

  // --- Good-Approximation + Lemma 3.4 ---
  paths::ToolkitCache cache(g, rep.params);
  const Dist target = radius ? weighted_radius(g) : weighted_diameter(g);
  const double eps = rep.params.epsilon();
  const double cap_factor = (1 + eps) * (1 + eps) + 1e-9;

  rep.approximation_ok = true;
  rep.cap_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (sets[i].empty()) continue;
    const auto sk = cache.skeleton(sets[i]);
    const double scale = static_cast<double>(sk.total_scale());
    double set_extreme = radius ? 1e300 : 0.0;
    for (std::uint32_t s = 0; s < sk.size(); ++s) {
      const Dist e_tilde = sk.approx_eccentricity(s);
      if (e_tilde >= kInfDist) {
        rep.approximation_ok = false;
        continue;
      }
      const double unscaled = static_cast<double>(e_tilde) / scale;
      const double exact = static_cast<double>(ecc[sk.members[s]]);
      const double ratio = unscaled / exact;
      rep.worst_ecc_ratio = std::max(rep.worst_ecc_ratio, ratio);
      if (ratio < 1.0 - 1e-9 || ratio > cap_factor) {
        rep.approximation_ok = false;
      }
      set_extreme = radius ? std::min(set_extreme, unscaled)
                           : std::max(set_extreme, unscaled);
    }
    // Lemma 3.4 per set: for the diameter, f(i) <= (1+eps)^2 D always;
    // good sets reach at least D (resp. at most (1+eps)^2 R which we
    // count against R itself for the radius, matching the lemma's
    // one-sided form).
    const double t = static_cast<double>(target);
    if (!radius) {
      if (set_extreme > cap_factor * t) rep.cap_ok = false;
      if (set_extreme >= t - 1e-9) ++rep.good_sets;
    } else {
      if (set_extreme < t - 1e-9) rep.cap_ok = false;  // ẽ >= e >= R
      if (set_extreme <= cap_factor * t) ++rep.good_sets;
    }
  }
  return rep;
}

}  // namespace qc::core
