// The good events of Section 3.1 and Lemma 3.4, as an executable
// analysis:
//
//  * Good-Scale — every sampled set has |S_i| = Θ(r), and a node of
//    extreme eccentricity joins β = Θ(r) of the sets;
//  * Good-Approximation — ẽ sandwiches the true eccentricity
//    (bit-checked against exact oracles);
//  * Lemma 3.4 — the number of i with f(i) ≥ D_{G,w} (≤ R for the
//    radius) is Θ(r), and every f(i) ≤ (1+ε)²·D_{G,w}.
//
// The paper assumes these hold w.h.p. and conditions on them; this
// module measures them on concrete instances so the assumption is
// auditable rather than implicit.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "paths/params.h"

namespace qc::core {

struct GoodEventsReport {
  paths::Params params;
  std::size_t sets = 0;
  // Good-Scale:
  std::size_t empty_sets = 0;
  std::size_t min_size = 0;
  std::size_t max_size = 0;
  double mean_size = 0;
  /// |S_i| within [r/6, 6r] for every non-empty set (our Θ(r) window).
  bool scale_ok = false;
  /// β: sets containing the extreme-eccentricity node v*.
  std::size_t beta = 0;
  // Good-Approximation (checked over every (i, s ∈ S_i)):
  bool approximation_ok = false;
  double worst_ecc_ratio = 0;  ///< max ẽ/e over all members
  // Lemma 3.4:
  std::uint64_t good_sets = 0;   ///< f(i) beyond the target
  bool cap_ok = false;           ///< all f(i) within (1+ε)²·target
};

/// Samples n sets with probability r/n per node (seeded), builds every
/// skeleton, and audits the three events. `radius` flips max to min.
GoodEventsReport analyze_good_events(const WeightedGraph& g,
                                     std::uint64_t seed, bool radius);

}  // namespace qc::core
