// Baselines for Table 1: classical distributed algorithms (genuine,
// message-level) and the Le Gall–Magniez-style quantum search for the
// unweighted diameter/radius, plus closed-form round-cost models for the
// baselines whose internals are out of scope (see DESIGN.md S3).
#pragma once

#include <cstdint>

#include "congest/simulator.h"
#include "graph/graph.h"

namespace qc::core {

/// Distributed unweighted APSP by pipelined concurrent BFS floods
/// (Holzer–Wattenhofer style: one wave label per source, forwarded on
/// improvement, a bounded number of labels per node per round). Every
/// node learns its hop distance to every other node. O(n + D) rounds.
struct DistributedApspResult {
  congest::RunStats stats;
  /// dist[v][s] = hop distance from s to v (as learned by node v).
  std::vector<std::vector<Dist>> dist;
};
DistributedApspResult distributed_unweighted_apsp(const WeightedGraph& g,
                                                  congest::Config config = {});

/// Classical exact unweighted diameter/radius: APSP + local
/// eccentricities + a global aggregate. Θ(n) rounds — the classical
/// baseline row of Table 1.
struct ClassicalExtremumResult {
  congest::RunStats stats;
  Dist value = 0;
};
ClassicalExtremumResult classical_unweighted_diameter(
    const WeightedGraph& g, congest::Config config = {});
ClassicalExtremumResult classical_unweighted_radius(
    const WeightedGraph& g, congest::Config config = {});

/// Quantum unweighted diameter/radius via the Lemma 3.1 framework over
/// nodes, with Evaluation = one distributed BFS + convergecast (the
/// simple O(√n·D) instantiation; see lgm_quantum_unweighted_* below for
/// the Õ(√(nD)) block structure).
struct QuantumUnweightedResult {
  Dist value = 0;
  std::uint64_t rounds = 0;       ///< charged: calls × (bfs + aggregate)
  std::uint64_t oracle_calls = 0;
  std::uint64_t eval_rounds = 0;  ///< measured per-evaluation cost
};
QuantumUnweightedResult quantum_unweighted_diameter(const WeightedGraph& g,
                                                    std::uint64_t seed = 1);
QuantumUnweightedResult quantum_unweighted_radius(const WeightedGraph& g,
                                                  std::uint64_t seed = 1);

/// Le Gall–Magniez-structured quantum unweighted diameter/radius:
/// partition V into ⌈n/D⌉ blocks of ≈D nodes and Grover-search over
/// *blocks*; evaluating one block runs a pipelined multi-source BFS
/// from all its nodes — Õ(D) rounds — and returns the block's extreme
/// eccentricity. Total: Õ(√(n/D)) calls × Õ(D) rounds = Õ(√(nD)),
/// the paper's Table 1 row for unweighted diameter/radius [12].
struct LgmResult {
  Dist value = 0;
  std::uint64_t rounds = 0;        ///< charged per Lemma 3.1
  std::uint64_t oracle_calls = 0;
  std::uint64_t eval_rounds = 0;   ///< measured per-block evaluation
  std::size_t block_count = 0;
  std::size_t block_size = 0;
  std::size_t measured_block = 0;
  bool distributed_value_matches = true;
};
LgmResult lgm_quantum_unweighted_diameter(const WeightedGraph& g,
                                          std::uint64_t seed = 1);
LgmResult lgm_quantum_unweighted_radius(const WeightedGraph& g,
                                        std::uint64_t seed = 1);

/// Closed-form round-cost models for Table 1 (polylog factors set to
/// ⌈log₂ n⌉; constants 1). All return simulated-round estimates.
namespace model {

double polylog(std::uint64_t n);

/// Classical exact unweighted APSP / diameter [17, 22]: Θ(n).
double classical_unweighted_rounds(std::uint64_t n);
/// Bernstein–Nanongkai exact weighted APSP [6]: Õ(n).
double classical_weighted_rounds(std::uint64_t n);
/// Le Gall–Magniez quantum unweighted diameter [12]: Õ(√(nD)).
double lgm_unweighted_rounds(std::uint64_t n, std::uint64_t d);
/// This work (Theorem 1.1): Õ(min{n^{9/10}·D^{3/10}, n}).
double theorem11_rounds(std::uint64_t n, std::uint64_t d);
/// This work (Theorem 1.2): Ω̃(n^{2/3}) quantum lower bound.
double theorem12_lower_bound(std::uint64_t n);
/// Classical Ω̃(n) lower bound for (3/2−ε)-approx [2].
double classical_lower_bound(std::uint64_t n);
/// Chechik–Mukhtar weighted SSSP / 2-approx [8]: Õ(√n·D^{1/4} + D).
double cm_two_approx_rounds(std::uint64_t n, std::uint64_t d);
/// Elkin et al. quantum lower bound for exact [20]: Ω̃(∛(nD²) + √n).
double quantum_exact_lower_bound(std::uint64_t n, std::uint64_t d);

}  // namespace model

}  // namespace qc::core
