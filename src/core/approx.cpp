#include "core/approx.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "congest/primitives.h"
#include "graph/algorithms.h"
#include "paths/distributed.h"

namespace qc::core {

namespace {

using congest::Config;
using congest::Incoming;
using congest::Message;
using congest::NodeContext;
using congest::NodeProgram;
using congest::RunStats;

void accumulate(RunStats& total, const RunStats& part) {
  total.rounds += part.rounds;
  total.messages += part.messages;
  total.bits += part.bits;
}

// Timed-release weighted SSSP with early termination: a node announces
// exactly in round d(s,v) and is done once it has announced, so the
// engine halts ecc_w(s)+2 rounds in (instead of a worst-case n·W
// schedule).
class WeightedSsspProgram final : public NodeProgram {
 public:
  WeightedSsspProgram(NodeId source, std::uint32_t dist_bits)
      : source_(source), dist_bits_(dist_bits) {}

  void on_start(NodeContext& ctx) override {
    for (const HalfEdge& h : ctx.neighbors()) weights_[h.to] = h.weight;
    if (ctx.id() == source_) best_ = 0;
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      best_ = std::min(best_, dist_add(in.msg.field(0), weights_.at(in.from)));
    }
    if (!announced_ && best_ == round_) {
      announced_ = true;
      Message m;
      m.push(best_, dist_bits_);
      ctx.broadcast(m);
    }
    ++round_;
  }

  bool done() const override { return announced_; }
  Dist dist() const { return best_; }

 private:
  NodeId source_;
  std::uint32_t dist_bits_;
  std::map<NodeId, Weight> weights_;
  Dist best_ = kInfDist;
  Dist round_ = 0;
  bool announced_ = false;
};

// Random-delay pipelined multi-source BFS (the unweighted analogue of
// Algorithm 3, single scale). Windows of ceil(log n) physical rounds;
// instance a's wave runs during windows [delay_a, delay_a + cap].
class MultiBfsDelayProgram final : public NodeProgram {
 public:
  MultiBfsDelayProgram(const std::vector<NodeId>& sources,
                       const std::vector<std::uint64_t>& delays, Dist cap,
                       std::uint32_t slot_count, NodeId n)
      : sources_(&sources),
        delays_(&delays),
        cap_(cap),
        slot_count_(slot_count),
        inst_bits_(bits_for(sources.size() + 1)),
        dist_bits_(bits_for(cap + 2)) {
    (void)n;
    dist_.assign(sources.size(), kInfDist);
    announced_.assign(sources.size(), false);
    const std::uint64_t max_delay =
        *std::max_element(delays.begin(), delays.end());
    total_windows_ = max_delay + cap + 2;
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    const std::uint64_t window = local_round_ / slot_count_;
    const std::uint64_t slot = local_round_ % slot_count_;

    for (const Incoming& in : inbox) {
      const auto a = static_cast<std::size_t>(in.msg.field(0));
      QC_CHECK(a < sources_->size(), "bad BFS instance tag");
      dist_[a] = std::min(dist_[a], in.msg.field(1) + 1);
    }

    if (slot == 0) {
      for (std::size_t a = 0; a < sources_->size(); ++a) {
        if (window < (*delays_)[a]) continue;
        const std::uint64_t tau = window - (*delays_)[a];
        if (tau > cap_) continue;
        if (tau == 0 && ctx.id() == (*sources_)[a]) dist_[a] = 0;
        if (!announced_[a] && dist_[a] == tau) {
          announced_[a] = true;
          Message m;
          m.push(a, inst_bits_).push(dist_[a], dist_bits_);
          queue_.push_back(std::move(m));
        }
      }
      if (queue_.size() > slot_count_) {
        throw paths::AlgorithmFailure(
            "multi-source BFS: window overflow at node " +
            std::to_string(ctx.id()));
      }
    }
    if (!queue_.empty()) {
      ctx.broadcast(queue_.front());
      queue_.erase(queue_.begin());
    }
    ++local_round_;
  }

  bool done() const override {
    return local_round_ >= total_windows_ * slot_count_;
  }

  Dist dist(std::size_t a) const { return dist_[a]; }

 private:
  const std::vector<NodeId>* sources_;
  const std::vector<std::uint64_t>* delays_;
  Dist cap_;
  std::uint64_t slot_count_;
  std::uint32_t inst_bits_;
  std::uint32_t dist_bits_;
  std::uint64_t total_windows_;
  std::uint64_t local_round_ = 0;
  std::vector<Dist> dist_;
  std::vector<bool> announced_;
  std::vector<Message> queue_;
};

// Weighted APSP: every node runs a timed-release-style weighted wave,
// staggered by a DFS token over a precomputed BFS tree. Unlike the
// unweighted case the fronts can collide, so each node keeps a FIFO of
// improved (source, dist) labels and drains as many per round as fit
// in the bandwidth. Labels are relaxed Bellman–Ford style, so
// correctness never depends on timing.
//
// Wire format: {type:2}...; type 0 = label(source, dist), type 1 =
// token down, type 2 = token up.
class WeightedApspProgram final : public NodeProgram {
 public:
  WeightedApspProgram(NodeId root, const congest::BfsTreeNodeResult& tree,
                      NodeId n, std::uint32_t dist_bits,
                      std::uint32_t labels_per_round)
      : root_(root),
        tree_(tree),
        id_bits_(bits_for(n)),
        dist_bits_(dist_bits),
        labels_per_round_(labels_per_round),
        dist_(n, kInfDist),
        queued_(n, false) {}

  void on_start(NodeContext& ctx) override {
    for (const HalfEdge& h : ctx.neighbors()) weights_[h.to] = h.weight;
    if (ctx.id() == root_) {
      start_wave(ctx.id());
      holding_token_ = true;
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      switch (in.msg.field(0)) {
        case 0: {
          const auto s = static_cast<NodeId>(in.msg.field(1));
          const Dist d =
              dist_add(in.msg.field(2), weights_.at(in.from));
          if (d < dist_[s]) {
            dist_[s] = d;
            if (!queued_[s]) {
              queued_[s] = true;
              pending_.push_back(s);
            }
          }
          break;
        }
        case 1:
          start_wave(ctx.id());
          holding_token_ = true;
          held_rounds_ = 0;
          break;
        case 2:
          holding_token_ = true;
          held_rounds_ = 1;
          break;
        default:
          throw ModelError("WeightedApspProgram: unknown message type");
      }
    }

    // Drain the label queue within the bandwidth budget. A source may
    // re-enter the queue on later improvements; we always transmit the
    // *current* best label.
    std::uint32_t sent = 0;
    while (sent < labels_per_round_ && !pending_.empty()) {
      const NodeId s = pending_.front();
      pending_.erase(pending_.begin());
      queued_[s] = false;
      Message label;
      label.push(0, 2).push(s, id_bits_).push(dist_[s], dist_bits_);
      ctx.broadcast(label);
      ++sent;
    }

    if (holding_token_) {
      if (held_rounds_ == 0) {
        ++held_rounds_;
      } else if (next_child_ < tree_.children.size()) {
        Message token;
        token.push(1, 2);
        ctx.send(tree_.children[next_child_], token);
        ++next_child_;
        holding_token_ = false;
      } else if (ctx.id() != root_) {
        Message token;
        token.push(2, 2);
        ctx.send(tree_.parent, token);
        holding_token_ = false;
        token_done_ = true;
      } else {
        holding_token_ = false;
        token_done_ = true;
      }
    }
  }

  bool done() const override { return token_done_ && pending_.empty(); }

  const std::vector<Dist>& distances() const { return dist_; }

 private:
  void start_wave(NodeId me) {
    dist_[me] = 0;
    if (!queued_[me]) {
      queued_[me] = true;
      pending_.push_back(me);
    }
  }

  NodeId root_;
  congest::BfsTreeNodeResult tree_;
  std::uint32_t id_bits_;
  std::uint32_t dist_bits_;
  std::uint32_t labels_per_round_;
  std::map<NodeId, Weight> weights_;
  std::vector<Dist> dist_;
  std::vector<bool> queued_;
  std::vector<NodeId> pending_;
  bool holding_token_ = false;
  bool token_done_ = false;
  std::uint32_t held_rounds_ = 0;
  std::size_t next_child_ = 0;
};

ClassicalWeightedResult classical_weighted_extremum(const WeightedGraph& g,
                                                    bool radius,
                                                    Config config) {
  const NodeId n = g.node_count();
  auto apsp = distributed_weighted_apsp(g, config);
  std::vector<std::uint64_t> ecc(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    ecc[v] = *std::max_element(apsp.dist[v].begin(), apsp.dist[v].end());
  }
  const Dist bound = static_cast<Dist>(n) * g.max_weight();
  const auto agg = congest::global_aggregate(
      g, 0, ecc,
      radius ? congest::AggregateOp::kMin : congest::AggregateOp::kMax,
      std::min<std::uint32_t>(63, bits_for(bound + 1)), config);
  ClassicalWeightedResult out;
  out.stats = apsp.stats;
  accumulate(out.stats, agg.stats);
  out.value = agg.value;
  return out;
}

}  // namespace

WeightedApspResult distributed_weighted_apsp(const WeightedGraph& g,
                                             Config config) {
  const NodeId n = g.node_count();
  QC_REQUIRE(g.is_connected(), "weighted APSP needs a connected network");
  const auto tree = congest::build_bfs_tree(g, 0, config);
  const Dist bound = static_cast<Dist>(n) * g.max_weight() + 1;
  const std::uint32_t dist_bits =
      std::min<std::uint32_t>(63, bits_for(bound + 1));
  const std::uint32_t msg_bits = 2 + bits_for(n) + dist_bits;
  const std::uint32_t bandwidth = config.bandwidth_bits != 0
                                      ? config.bandwidth_bits
                                      : congest::default_bandwidth(n);
  // Keep one slot of headroom for a possible token message.
  const std::uint32_t labels_per_round =
      std::max<std::uint32_t>(1, (bandwidth - 2) / msg_bits);

  auto run = congest::run_on_all<WeightedApspProgram>(
      g,
      [&](NodeId v) {
        return std::make_unique<WeightedApspProgram>(
            0, tree.nodes[v], n, dist_bits, labels_per_round);
      },
      config);
  WeightedApspResult out;
  out.stats = tree.stats;
  accumulate(out.stats, run.stats);
  out.dist.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    out.dist.push_back(run.at(v).distances());
  }
  return out;
}

ClassicalWeightedResult classical_weighted_diameter(const WeightedGraph& g,
                                                    Config config) {
  return classical_weighted_extremum(g, false, config);
}

ClassicalWeightedResult classical_weighted_radius(const WeightedGraph& g,
                                                  Config config) {
  return classical_weighted_extremum(g, true, config);
}

WeightedSsspResult distributed_weighted_sssp(const WeightedGraph& g,
                                             NodeId source, Config config) {
  QC_REQUIRE(source < g.node_count(), "source out of range");
  QC_REQUIRE(g.is_connected(), "weighted SSSP needs a connected network");
  const Dist bound =
      static_cast<Dist>(g.node_count()) * g.max_weight() + 1;
  const std::uint32_t dist_bits =
      std::min<std::uint32_t>(63, bits_for(bound + 1));
  auto run = congest::run_on_all<WeightedSsspProgram>(
      g,
      [&](NodeId) {
        return std::make_unique<WeightedSsspProgram>(source, dist_bits);
      },
      config);
  WeightedSsspResult out;
  out.stats = run.stats;
  out.dist.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out.dist.push_back(run.at(v).dist());
  }
  return out;
}

TwoApproxResult two_approx_weighted_diameter(const WeightedGraph& g,
                                             Config config) {
  auto sssp = distributed_weighted_sssp(g, 0, config);
  const Dist bound = static_cast<Dist>(g.node_count()) * g.max_weight();
  const auto agg = congest::global_aggregate(
      g, 0, sssp.dist, congest::AggregateOp::kMax,
      std::min<std::uint32_t>(63, bits_for(bound + 1)), config);
  TwoApproxResult out;
  out.stats = sssp.stats;
  accumulate(out.stats, agg.stats);
  out.ecc_leader = agg.value;
  out.upper_bound = 2 * agg.value;
  return out;
}

MultiBfsResult distributed_multi_source_bfs(const WeightedGraph& g,
                                            const std::vector<NodeId>& sources,
                                            Rng& rng, Config config) {
  QC_REQUIRE(!sources.empty(), "multi-source BFS needs sources");
  QC_REQUIRE(g.is_connected(), "multi-source BFS needs connectivity");
  const NodeId n = g.node_count();
  const std::size_t b = sources.size();
  const std::uint32_t slot_count = std::max<std::uint32_t>(1, clog2(n));

  MultiBfsResult out;

  // Leader's BFS gives ecc(leader) (= depth max), so cap = 2·ecc >= D.
  const auto tree = congest::build_bfs_tree(g, 0, config);
  accumulate(out.stats, tree.stats);
  std::vector<std::uint64_t> depths(n);
  for (NodeId v = 0; v < n; ++v) depths[v] = tree.nodes[v].depth;
  const auto dagg = congest::global_aggregate(
      g, 0, depths, congest::AggregateOp::kMax, bits_for(n), config);
  accumulate(out.stats, dagg.stats);
  const Dist cap = 2 * std::max<Dist>(1, dagg.value) + 1;

  for (std::uint32_t attempt = 1;; ++attempt) {
    std::vector<std::uint64_t> delays(b);
    const std::uint64_t range = b * slot_count + 1;
    for (auto& d : delays) d = rng.below(range);

    // Leader floods the delays (O(D + b) rounds).
    std::vector<std::vector<congest::FloodItem>> items(n);
    const std::uint32_t idx_bits = bits_for(b + 1);
    const std::uint32_t delay_bits = bits_for(range + 1);
    for (std::size_t a = 0; a < b; ++a) {
      congest::FloodItem f;
      f.push(a, idx_bits).push(delays[a], delay_bits);
      items[0].push_back(std::move(f));
    }
    accumulate(out.stats,
               congest::flood_items(g, std::move(items), config,
                                    congest::FloodCollect::kStatsOnly)
                   .stats);

    try {
      auto run = congest::run_on_all<MultiBfsDelayProgram>(
          g,
          [&](NodeId) {
            return std::make_unique<MultiBfsDelayProgram>(
                sources, delays, cap, slot_count, n);
          },
          config);
      accumulate(out.stats, run.stats);
      out.attempts = attempt;
      out.dist.assign(b, std::vector<Dist>(n, kInfDist));
      for (NodeId v = 0; v < n; ++v) {
        for (std::size_t a = 0; a < b; ++a) {
          out.dist[a][v] = run.at(v).dist(a);
        }
      }
      return out;
    } catch (const paths::AlgorithmFailure&) {
      out.stats.rounds += (b * slot_count + cap + 2) * slot_count;
      QC_CHECK(attempt < 64, "multi-source BFS failed too many times");
    }
  }
}

ThreeHalvesResult three_halves_unweighted_diameter(const WeightedGraph& g,
                                                   std::uint64_t seed,
                                                   Config config) {
  const NodeId n = g.node_count();
  QC_REQUIRE(n >= 2 && g.is_connected(),
             "3/2-approximation needs a connected graph");
  Rng rng(seed);
  ThreeHalvesResult out;

  // Sample ~sqrt(n)·log n sources (nodes flip local coins; the leader
  // collects membership with the delay flood below).
  const double p = std::min(
      1.0, 1.5 * static_cast<double>(clog2(n)) / std::sqrt(double(n)));
  std::vector<NodeId> sample;
  for (NodeId v = 0; v < n; ++v) {
    if (rng.chance(p)) sample.push_back(v);
  }
  if (sample.empty()) sample.push_back(0);
  out.sample_size = sample.size();

  auto mb = distributed_multi_source_bfs(g, sample, rng, config);
  accumulate(out.stats, mb.stats);

  // Estimate part 1: max_{s in S} ecc(s) = max over all (a, v) — one
  // aggregate of per-node maxima.
  std::vector<std::uint64_t> local_max(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t a = 0; a < sample.size(); ++a) {
      if (mb.dist[a][v] < kInfDist) {
        local_max[v] = std::max<std::uint64_t>(local_max[v], mb.dist[a][v]);
      }
    }
  }
  const auto ecc_s = congest::global_aggregate(
      g, 0, local_max, congest::AggregateOp::kMax, bits_for(n), config);
  accumulate(out.stats, ecc_s.stats);

  // Find w = argmax_v d(v, S): pack (distance, reversed id) so the max
  // aggregate returns the argmax too.
  const std::uint32_t id_bits = bits_for(n);
  std::vector<std::uint64_t> packed(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    Dist dvs = kInfDist;
    for (std::size_t a = 0; a < sample.size(); ++a) {
      dvs = std::min(dvs, mb.dist[a][v]);
    }
    if (dvs >= kInfDist) dvs = 0;
    packed[v] = (static_cast<std::uint64_t>(dvs) << id_bits) | v;
  }
  const auto wagg = congest::global_aggregate(
      g, 0, packed, congest::AggregateOp::kMax,
      std::min<std::uint32_t>(63, bits_for(n) + id_bits + 1), config);
  accumulate(out.stats, wagg.stats);
  const auto w =
      static_cast<NodeId>(wagg.value & ((std::uint64_t{1} << id_bits) - 1));
  out.far_node = w;

  // Estimate part 2: ecc(w) via a BFS wave from w.
  const auto wtree = congest::build_bfs_tree(g, w, config);
  accumulate(out.stats, wtree.stats);
  std::vector<std::uint64_t> wdepth(n);
  for (NodeId v = 0; v < n; ++v) wdepth[v] = wtree.nodes[v].depth;
  const auto ecc_w = congest::global_aggregate(
      g, 0, wdepth, congest::AggregateOp::kMax, bits_for(n), config);
  accumulate(out.stats, ecc_w.stats);

  out.estimate = std::max<Dist>(ecc_s.value, ecc_w.value);
  out.exact = unweighted_diameter(g);
  return out;
}

}  // namespace qc::core
