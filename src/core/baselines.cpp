#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "congest/primitives.h"
#include "core/approx.h"
#include "graph/algorithms.h"
#include "quantum/framework.h"

namespace qc::core {

namespace {

using congest::Incoming;
using congest::Message;
using congest::NodeContext;
using congest::NodeProgram;

// Pipelined multi-source BFS (Holzer–Wattenhofer style). A DFS token
// walks a precomputed BFS tree; a node starts its own BFS wave when the
// token first reaches it and holds the token one extra round before
// passing it on. Consecutive starts are therefore separated by more
// than the graph distance between the sources, which makes wave fronts
// collision-free: every node forwards at most one wave label per round,
// so the whole APSP fits in O(n + D) rounds under the CONGEST cap.
//
// Wire format: {type:2}... type 0 = wave(source, dist), type 1 = token
// to a child, type 2 = token back to the parent.
class MultiBfsProgram final : public NodeProgram {
 public:
  MultiBfsProgram(NodeId root, const congest::BfsTreeNodeResult& tree,
                  NodeId n)
      : root_(root), tree_(tree), n_(n), id_bits_(bits_for(n)),
        dist_(n, kInfDist) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      start_wave(ctx);
      holding_token_ = true;
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      switch (in.msg.field(0)) {
        case 0: {  // wave(source, dist)
          const auto s = static_cast<NodeId>(in.msg.field(1));
          const Dist d = in.msg.field(2) + 1;
          if (d < dist_[s]) {
            dist_[s] = d;
            Message wave;
            wave.push(0, 2).push(s, id_bits_).push(d, id_bits_ + 1);
            ctx.broadcast(wave);
          }
          break;
        }
        case 1:  // token arrives from parent
          start_wave(ctx);
          holding_token_ = true;
          held_rounds_ = 0;
          break;
        case 2:  // token returned from a child
          holding_token_ = true;
          held_rounds_ = 1;  // no extra wait on the way back up
          break;
        default:
          throw ModelError("MultiBfsProgram: unknown message type");
      }
    }

    if (holding_token_) {
      if (held_rounds_ == 0) {
        ++held_rounds_;  // the one-round pause that prevents collisions
      } else if (next_child_ < tree_.children.size()) {
        Message token;
        token.push(1, 2);
        ctx.send(tree_.children[next_child_], token);
        ++next_child_;
        holding_token_ = false;
      } else if (ctx.id() != root_) {
        Message token;
        token.push(2, 2);
        ctx.send(tree_.parent, token);
        holding_token_ = false;
        finished_ = true;
      } else {
        holding_token_ = false;  // root: DFS complete
        finished_ = true;
      }
    }
  }

  bool done() const override { return finished_; }

  const std::vector<Dist>& distances() const { return dist_; }

 private:
  void start_wave(NodeContext& ctx) {
    dist_[ctx.id()] = 0;
    Message wave;
    wave.push(0, 2).push(ctx.id(), id_bits_).push(0, id_bits_ + 1);
    ctx.broadcast(wave);
  }

  NodeId root_;
  congest::BfsTreeNodeResult tree_;
  NodeId n_;
  std::uint32_t id_bits_;
  std::vector<Dist> dist_;
  bool holding_token_ = false;
  bool finished_ = false;
  std::uint32_t held_rounds_ = 0;
  std::size_t next_child_ = 0;
};

void accumulate(congest::RunStats& total, const congest::RunStats& part) {
  total.rounds += part.rounds;
  total.messages += part.messages;
  total.bits += part.bits;
}

ClassicalExtremumResult classical_extremum(const WeightedGraph& g,
                                           bool radius,
                                           congest::Config config) {
  const NodeId n = g.node_count();
  auto apsp = distributed_unweighted_apsp(g, config);
  // Each node's eccentricity is local knowledge after APSP.
  std::vector<std::uint64_t> ecc(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    ecc[v] = *std::max_element(apsp.dist[v].begin(), apsp.dist[v].end());
  }
  const auto agg = congest::global_aggregate(
      g, 0, ecc,
      radius ? congest::AggregateOp::kMin : congest::AggregateOp::kMax,
      bits_for(n), config);
  ClassicalExtremumResult out;
  out.stats = apsp.stats;
  accumulate(out.stats, agg.stats);
  out.value = agg.value;
  return out;
}

QuantumUnweightedResult quantum_unweighted(const WeightedGraph& g,
                                           bool radius, std::uint64_t seed) {
  const NodeId n = g.node_count();
  QC_REQUIRE(n >= 2 && g.is_connected(),
             "quantum unweighted search needs a connected graph, n >= 2");
  // Measured per-evaluation cost: one BFS wave + one depth convergecast.
  const auto bfs = congest::build_bfs_tree(g, 0);
  std::vector<std::uint64_t> depths(n);
  for (NodeId v = 0; v < n; ++v) depths[v] = bfs.nodes[v].depth;
  const auto agg = congest::global_aggregate(g, 0, depths,
                                             congest::AggregateOp::kMax,
                                             bits_for(n));
  const std::uint64_t eval_rounds = bfs.stats.rounds + agg.stats.rounds;

  // Bookkeeping backend: exact eccentricities.
  quantum::OptimizationProblem p;
  const auto ecc = unweighted_eccentricities(g);
  p.values.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    p.values.push_back(static_cast<std::int64_t>(ecc[v]));
  }
  p.weights.assign(n, 1.0);
  p.rho = 1.0 / static_cast<double>(n);
  p.delta = 0.05;
  p.t_setup_rounds = bfs.stats.rounds;  // leader's index broadcast, O(D)
  p.t_eval_rounds = eval_rounds;
  Rng rng(seed);
  const auto res = radius ? quantum::framework_minimize(p, rng)
                          : quantum::framework_maximize(p, rng);

  QuantumUnweightedResult out;
  out.value = static_cast<Dist>(res.value);
  out.rounds = res.rounds;
  out.oracle_calls = res.oracle_calls;
  out.eval_rounds = eval_rounds;
  return out;
}

}  // namespace

DistributedApspResult distributed_unweighted_apsp(const WeightedGraph& g,
                                                  congest::Config config) {
  const NodeId n = g.node_count();
  QC_REQUIRE(g.is_connected(), "APSP needs a connected network");
  const auto tree = congest::build_bfs_tree(g, 0, config);
  auto run = congest::run_on_all<MultiBfsProgram>(
      g,
      [&](NodeId v) {
        return std::make_unique<MultiBfsProgram>(0, tree.nodes[v], n);
      },
      config);
  DistributedApspResult out;
  out.stats = tree.stats;
  accumulate(out.stats, run.stats);
  out.dist.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    out.dist.push_back(run.at(v).distances());
  }
  return out;
}

ClassicalExtremumResult classical_unweighted_diameter(const WeightedGraph& g,
                                                      congest::Config config) {
  return classical_extremum(g, false, config);
}

ClassicalExtremumResult classical_unweighted_radius(const WeightedGraph& g,
                                                    congest::Config config) {
  return classical_extremum(g, true, config);
}

QuantumUnweightedResult quantum_unweighted_diameter(const WeightedGraph& g,
                                                    std::uint64_t seed) {
  return quantum_unweighted(g, false, seed);
}

QuantumUnweightedResult quantum_unweighted_radius(const WeightedGraph& g,
                                                  std::uint64_t seed) {
  return quantum_unweighted(g, true, seed);
}

namespace {

LgmResult lgm_quantum_unweighted(const WeightedGraph& g, bool radius,
                                 std::uint64_t seed) {
  const NodeId n = g.node_count();
  QC_REQUIRE(n >= 2 && g.is_connected(),
             "LGM search needs a connected graph, n >= 2");
  Rng rng(seed);

  // Estimate D from the leader's eccentricity (<= D <= 2·ecc).
  const auto tree = congest::build_bfs_tree(g, 0);
  std::vector<std::uint64_t> depths(n);
  for (NodeId v = 0; v < n; ++v) depths[v] = tree.nodes[v].depth;
  const auto dagg = congest::global_aggregate(
      g, 0, depths, congest::AggregateOp::kMax, bits_for(n));
  const Dist d_hat = std::max<Dist>(1, dagg.value);

  // Blocks of ~D consecutive ids (any fixed public partition works).
  const auto block_size = static_cast<std::size_t>(
      std::min<Dist>(d_hat, n));
  const std::size_t blocks = ceil_div(n, block_size);

  // Bookkeeping backend: the block values from the exact oracle.
  const auto ecc = unweighted_eccentricities(g);
  std::vector<std::int64_t> values(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::int64_t best = radius ? std::numeric_limits<std::int64_t>::max()
                               : 0;
    for (NodeId v = static_cast<NodeId>(b * block_size);
         v < std::min<std::size_t>(n, (b + 1) * block_size); ++v) {
      best = radius ? std::min(best, static_cast<std::int64_t>(ecc[v]))
                    : std::max(best, static_cast<std::int64_t>(ecc[v]));
    }
    values[b] = best;
  }

  // Run the search.
  quantum::OptimizationProblem p;
  p.values = values;
  p.weights.assign(blocks, 1.0);
  p.rho = 1.0 / static_cast<double>(blocks);
  p.delta = 0.05;
  Rng search_rng = rng.fork();
  const auto res = radius ? quantum::framework_minimize(p, search_rng)
                          : quantum::framework_maximize(p, search_rng);

  // Measure the per-block Evaluation genuinely: pipelined multi-source
  // BFS from every node of the measured block, then one aggregate of
  // the block's extreme eccentricity.
  const std::size_t mb = res.index;
  std::vector<NodeId> sources;
  for (NodeId v = static_cast<NodeId>(mb * block_size);
       v < std::min<std::size_t>(n, (mb + 1) * block_size); ++v) {
    sources.push_back(v);
  }
  Rng delays = rng.fork();
  auto bfs = distributed_multi_source_bfs(g, sources, delays);
  std::vector<std::uint64_t> local(n, radius ? std::uint64_t{0}
                                             : std::uint64_t{0});
  // ecc(s) = max_v dist[s][v]: per-source maxima are global aggregates;
  // the block extreme folds through one packed aggregate per source —
  // pipelined, we charge the flood-style O(D + |block|) by running the
  // per-node max (diameter) or the per-source-resolved min (radius).
  std::uint64_t eval_rounds = bfs.stats.rounds;
  std::int64_t measured_value;
  if (!radius) {
    // max over sources of ecc = max over (a, v) of dist.
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t a = 0; a < sources.size(); ++a) {
        local[v] = std::max<std::uint64_t>(local[v], bfs.dist[a][v]);
      }
    }
    const auto agg = congest::global_aggregate(
        g, 0, local, congest::AggregateOp::kMax, bits_for(n));
    eval_rounds += agg.stats.rounds;
    measured_value = static_cast<std::int64_t>(agg.value);
  } else {
    // min over sources of ecc(s): one aggregate per source, pipelined
    // in a real implementation; we run them and charge the max single
    // aggregate cost plus |block| (the pipelining bound).
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    std::uint64_t max_agg = 0;
    for (std::size_t a = 0; a < sources.size(); ++a) {
      std::vector<std::uint64_t> row(n);
      for (NodeId v = 0; v < n; ++v) row[v] = bfs.dist[a][v];
      const auto agg = congest::global_aggregate(
          g, 0, row, congest::AggregateOp::kMax, bits_for(n));
      max_agg = std::max(max_agg, agg.stats.rounds);
      best = std::min(best, static_cast<std::int64_t>(agg.value));
    }
    eval_rounds += max_agg + sources.size();
    measured_value = best;
  }

  LgmResult out;
  out.value = static_cast<Dist>(res.value);
  out.oracle_calls = res.oracle_calls;
  out.eval_rounds = eval_rounds;
  out.block_count = blocks;
  out.block_size = block_size;
  out.measured_block = mb;
  out.distributed_value_matches = (measured_value == values[mb]);
  // Charged rounds: preamble + calls × (leader broadcast + evaluation).
  out.rounds = tree.stats.rounds + dagg.stats.rounds +
               res.oracle_calls * (tree.stats.rounds + eval_rounds);
  return out;
}

}  // namespace

LgmResult lgm_quantum_unweighted_diameter(const WeightedGraph& g,
                                          std::uint64_t seed) {
  return lgm_quantum_unweighted(g, false, seed);
}

LgmResult lgm_quantum_unweighted_radius(const WeightedGraph& g,
                                        std::uint64_t seed) {
  return lgm_quantum_unweighted(g, true, seed);
}

namespace model {

double polylog(std::uint64_t n) {
  return std::max(1.0, std::log2(static_cast<double>(n)));
}

double classical_unweighted_rounds(std::uint64_t n) {
  return static_cast<double>(n);
}

double classical_weighted_rounds(std::uint64_t n) {
  return static_cast<double>(n) * polylog(n);
}

double lgm_unweighted_rounds(std::uint64_t n, std::uint64_t d) {
  return std::sqrt(static_cast<double>(n) * static_cast<double>(d)) *
         polylog(n);
}

double theorem11_rounds(std::uint64_t n, std::uint64_t d) {
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d);
  return std::min(std::pow(nd, 0.9) * std::pow(dd, 0.3), nd) * polylog(n);
}

double theorem12_lower_bound(std::uint64_t n) {
  const double l = polylog(n);
  return std::pow(static_cast<double>(n), 2.0 / 3.0) / (l * l);
}

double classical_lower_bound(std::uint64_t n) {
  return static_cast<double>(n) / polylog(n);
}

double cm_two_approx_rounds(std::uint64_t n, std::uint64_t d) {
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d);
  return (std::sqrt(nd) * std::pow(dd, 0.25) + dd) * polylog(n);
}

double quantum_exact_lower_bound(std::uint64_t n, std::uint64_t d) {
  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d);
  return std::cbrt(nd * dd * dd) + std::sqrt(nd);
}

}  // namespace model

}  // namespace qc::core
