file(REMOVE_RECURSE
  "CMakeFiles/quantum_network_demo.dir/quantum_network_demo.cpp.o"
  "CMakeFiles/quantum_network_demo.dir/quantum_network_demo.cpp.o.d"
  "quantum_network_demo"
  "quantum_network_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_network_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
