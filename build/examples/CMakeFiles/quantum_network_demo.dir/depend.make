# Empty dependencies file for quantum_network_demo.
# This may be replaced when dependencies are built.
