file(REMOVE_RECURSE
  "CMakeFiles/grover_playground.dir/grover_playground.cpp.o"
  "CMakeFiles/grover_playground.dir/grover_playground.cpp.o.d"
  "grover_playground"
  "grover_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
