# Empty compiler generated dependencies file for grover_playground.
# This may be replaced when dependencies are built.
