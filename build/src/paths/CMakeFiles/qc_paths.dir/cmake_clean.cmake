file(REMOVE_RECURSE
  "CMakeFiles/qc_paths.dir/distributed.cpp.o"
  "CMakeFiles/qc_paths.dir/distributed.cpp.o.d"
  "CMakeFiles/qc_paths.dir/params.cpp.o"
  "CMakeFiles/qc_paths.dir/params.cpp.o.d"
  "CMakeFiles/qc_paths.dir/reference.cpp.o"
  "CMakeFiles/qc_paths.dir/reference.cpp.o.d"
  "libqc_paths.a"
  "libqc_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
