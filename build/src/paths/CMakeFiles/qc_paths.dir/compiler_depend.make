# Empty compiler generated dependencies file for qc_paths.
# This may be replaced when dependencies are built.
