file(REMOVE_RECURSE
  "libqc_paths.a"
)
