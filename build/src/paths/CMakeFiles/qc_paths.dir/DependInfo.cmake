
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/distributed.cpp" "src/paths/CMakeFiles/qc_paths.dir/distributed.cpp.o" "gcc" "src/paths/CMakeFiles/qc_paths.dir/distributed.cpp.o.d"
  "/root/repo/src/paths/params.cpp" "src/paths/CMakeFiles/qc_paths.dir/params.cpp.o" "gcc" "src/paths/CMakeFiles/qc_paths.dir/params.cpp.o.d"
  "/root/repo/src/paths/reference.cpp" "src/paths/CMakeFiles/qc_paths.dir/reference.cpp.o" "gcc" "src/paths/CMakeFiles/qc_paths.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/qc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
