file(REMOVE_RECURSE
  "CMakeFiles/qc_core.dir/approx.cpp.o"
  "CMakeFiles/qc_core.dir/approx.cpp.o.d"
  "CMakeFiles/qc_core.dir/baselines.cpp.o"
  "CMakeFiles/qc_core.dir/baselines.cpp.o.d"
  "CMakeFiles/qc_core.dir/events.cpp.o"
  "CMakeFiles/qc_core.dir/events.cpp.o.d"
  "CMakeFiles/qc_core.dir/theorem11.cpp.o"
  "CMakeFiles/qc_core.dir/theorem11.cpp.o.d"
  "libqc_core.a"
  "libqc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
