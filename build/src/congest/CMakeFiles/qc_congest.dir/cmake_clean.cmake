file(REMOVE_RECURSE
  "CMakeFiles/qc_congest.dir/primitives.cpp.o"
  "CMakeFiles/qc_congest.dir/primitives.cpp.o.d"
  "CMakeFiles/qc_congest.dir/simulator.cpp.o"
  "CMakeFiles/qc_congest.dir/simulator.cpp.o.d"
  "libqc_congest.a"
  "libqc_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
