# Empty dependencies file for qc_quantum.
# This may be replaced when dependencies are built.
