file(REMOVE_RECURSE
  "CMakeFiles/qc_quantum.dir/framework.cpp.o"
  "CMakeFiles/qc_quantum.dir/framework.cpp.o.d"
  "CMakeFiles/qc_quantum.dir/qnetwork.cpp.o"
  "CMakeFiles/qc_quantum.dir/qnetwork.cpp.o.d"
  "CMakeFiles/qc_quantum.dir/search.cpp.o"
  "CMakeFiles/qc_quantum.dir/search.cpp.o.d"
  "CMakeFiles/qc_quantum.dir/statevector.cpp.o"
  "CMakeFiles/qc_quantum.dir/statevector.cpp.o.d"
  "libqc_quantum.a"
  "libqc_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
