
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quantum/framework.cpp" "src/quantum/CMakeFiles/qc_quantum.dir/framework.cpp.o" "gcc" "src/quantum/CMakeFiles/qc_quantum.dir/framework.cpp.o.d"
  "/root/repo/src/quantum/qnetwork.cpp" "src/quantum/CMakeFiles/qc_quantum.dir/qnetwork.cpp.o" "gcc" "src/quantum/CMakeFiles/qc_quantum.dir/qnetwork.cpp.o.d"
  "/root/repo/src/quantum/search.cpp" "src/quantum/CMakeFiles/qc_quantum.dir/search.cpp.o" "gcc" "src/quantum/CMakeFiles/qc_quantum.dir/search.cpp.o.d"
  "/root/repo/src/quantum/statevector.cpp" "src/quantum/CMakeFiles/qc_quantum.dir/statevector.cpp.o" "gcc" "src/quantum/CMakeFiles/qc_quantum.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
