file(REMOVE_RECURSE
  "libqc_quantum.a"
)
