
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowerbound/approxdeg.cpp" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/approxdeg.cpp.o" "gcc" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/approxdeg.cpp.o.d"
  "/root/repo/src/lowerbound/boolfn.cpp" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/boolfn.cpp.o" "gcc" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/boolfn.cpp.o.d"
  "/root/repo/src/lowerbound/gadget.cpp" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/gadget.cpp.o" "gcc" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/gadget.cpp.o.d"
  "/root/repo/src/lowerbound/protocol.cpp" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/protocol.cpp.o" "gcc" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/protocol.cpp.o.d"
  "/root/repo/src/lowerbound/server.cpp" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/server.cpp.o" "gcc" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/server.cpp.o.d"
  "/root/repo/src/lowerbound/table2.cpp" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/table2.cpp.o" "gcc" "src/lowerbound/CMakeFiles/qc_lowerbound.dir/table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congest/CMakeFiles/qc_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
