file(REMOVE_RECURSE
  "libqc_lowerbound.a"
)
