# Empty dependencies file for qc_lowerbound.
# This may be replaced when dependencies are built.
