file(REMOVE_RECURSE
  "CMakeFiles/qc_lowerbound.dir/approxdeg.cpp.o"
  "CMakeFiles/qc_lowerbound.dir/approxdeg.cpp.o.d"
  "CMakeFiles/qc_lowerbound.dir/boolfn.cpp.o"
  "CMakeFiles/qc_lowerbound.dir/boolfn.cpp.o.d"
  "CMakeFiles/qc_lowerbound.dir/gadget.cpp.o"
  "CMakeFiles/qc_lowerbound.dir/gadget.cpp.o.d"
  "CMakeFiles/qc_lowerbound.dir/protocol.cpp.o"
  "CMakeFiles/qc_lowerbound.dir/protocol.cpp.o.d"
  "CMakeFiles/qc_lowerbound.dir/server.cpp.o"
  "CMakeFiles/qc_lowerbound.dir/server.cpp.o.d"
  "CMakeFiles/qc_lowerbound.dir/table2.cpp.o"
  "CMakeFiles/qc_lowerbound.dir/table2.cpp.o.d"
  "libqc_lowerbound.a"
  "libqc_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qc_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
