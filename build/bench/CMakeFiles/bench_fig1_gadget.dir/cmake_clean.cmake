file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_gadget.dir/bench_fig1_gadget.cpp.o"
  "CMakeFiles/bench_fig1_gadget.dir/bench_fig1_gadget.cpp.o.d"
  "bench_fig1_gadget"
  "bench_fig1_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
