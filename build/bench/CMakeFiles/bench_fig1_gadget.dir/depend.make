# Empty dependencies file for bench_fig1_gadget.
# This may be replaced when dependencies are built.
