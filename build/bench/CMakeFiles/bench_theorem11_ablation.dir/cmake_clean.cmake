file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem11_ablation.dir/bench_theorem11_ablation.cpp.o"
  "CMakeFiles/bench_theorem11_ablation.dir/bench_theorem11_ablation.cpp.o.d"
  "bench_theorem11_ablation"
  "bench_theorem11_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem11_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
