file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_diameter_gadget.dir/bench_fig2_diameter_gadget.cpp.o"
  "CMakeFiles/bench_fig2_diameter_gadget.dir/bench_fig2_diameter_gadget.cpp.o.d"
  "bench_fig2_diameter_gadget"
  "bench_fig2_diameter_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_diameter_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
