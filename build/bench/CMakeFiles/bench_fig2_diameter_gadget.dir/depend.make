# Empty dependencies file for bench_fig2_diameter_gadget.
# This may be replaced when dependencies are built.
