# Empty dependencies file for bench_fig4_radius_gadget.
# This may be replaced when dependencies are built.
