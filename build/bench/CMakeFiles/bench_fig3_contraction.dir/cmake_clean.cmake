file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_contraction.dir/bench_fig3_contraction.cpp.o"
  "CMakeFiles/bench_fig3_contraction.dir/bench_fig3_contraction.cpp.o.d"
  "bench_fig3_contraction"
  "bench_fig3_contraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_contraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
