# Empty compiler generated dependencies file for bench_fig3_contraction.
# This may be replaced when dependencies are built.
