file(REMOVE_RECURSE
  "CMakeFiles/bench_framework_ablation.dir/bench_framework_ablation.cpp.o"
  "CMakeFiles/bench_framework_ablation.dir/bench_framework_ablation.cpp.o.d"
  "bench_framework_ablation"
  "bench_framework_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_framework_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
