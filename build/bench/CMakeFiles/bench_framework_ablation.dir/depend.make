# Empty dependencies file for bench_framework_ablation.
# This may be replaced when dependencies are built.
