# Empty compiler generated dependencies file for bench_theorem11_scaling.
# This may be replaced when dependencies are built.
