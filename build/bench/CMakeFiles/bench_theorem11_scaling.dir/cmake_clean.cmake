file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem11_scaling.dir/bench_theorem11_scaling.cpp.o"
  "CMakeFiles/bench_theorem11_scaling.dir/bench_theorem11_scaling.cpp.o.d"
  "bench_theorem11_scaling"
  "bench_theorem11_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem11_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
