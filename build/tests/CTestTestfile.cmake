# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_congest[1]_include.cmake")
include("/root/repo/build/tests/test_paths[1]_include.cmake")
include("/root/repo/build/tests/test_quantum[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound[1]_include.cmake")
include("/root/repo/build/tests/test_approx[1]_include.cmake")
include("/root/repo/build/tests/test_qnetwork[1]_include.cmake")
include("/root/repo/build/tests/test_lgm[1]_include.cmake")
include("/root/repo/build/tests/test_io_election[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_goldens[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
