# Empty compiler generated dependencies file for test_lgm.
# This may be replaced when dependencies are built.
