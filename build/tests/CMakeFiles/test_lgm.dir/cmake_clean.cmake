file(REMOVE_RECURSE
  "CMakeFiles/test_lgm.dir/test_lgm.cpp.o"
  "CMakeFiles/test_lgm.dir/test_lgm.cpp.o.d"
  "test_lgm"
  "test_lgm.pdb"
  "test_lgm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
