file(REMOVE_RECURSE
  "CMakeFiles/test_goldens.dir/test_goldens.cpp.o"
  "CMakeFiles/test_goldens.dir/test_goldens.cpp.o.d"
  "test_goldens"
  "test_goldens.pdb"
  "test_goldens[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_goldens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
