file(REMOVE_RECURSE
  "CMakeFiles/test_quantum.dir/test_quantum.cpp.o"
  "CMakeFiles/test_quantum.dir/test_quantum.cpp.o.d"
  "test_quantum"
  "test_quantum.pdb"
  "test_quantum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
