# Empty dependencies file for test_io_election.
# This may be replaced when dependencies are built.
