file(REMOVE_RECURSE
  "CMakeFiles/test_io_election.dir/test_io_election.cpp.o"
  "CMakeFiles/test_io_election.dir/test_io_election.cpp.o.d"
  "test_io_election"
  "test_io_election.pdb"
  "test_io_election[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
