# Empty dependencies file for qcongest_cli.
# This may be replaced when dependencies are built.
