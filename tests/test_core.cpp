// Tests for the core algorithms: the Theorem 1.1 quantum weighted
// diameter/radius, the classical baselines, and the cost models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace qc::core {
namespace {

WeightedGraph weighted_test_graph(std::uint64_t seed, NodeId n,
                                  Weight max_w) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 0.12, rng);
  return gen::randomize_weights(g, max_w, rng);
}

// ---------------------------------------------------------------------
// Distributed unweighted APSP
// ---------------------------------------------------------------------

class ApspTest : public ::testing::TestWithParam<int> {};

TEST_P(ApspTest, MatchesCentralizedBfsEverywhere) {
  Rng rng(50 + GetParam());
  WeightedGraph g = GetParam() % 3 == 0   ? gen::path(20)
                    : GetParam() % 3 == 1 ? gen::grid(4, 6)
                                          : gen::erdos_renyi_connected(
                                                26, 0.12, rng);
  const auto res = distributed_unweighted_apsp(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto ref = bfs_distances(g, s);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(res.dist[v][s], ref[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST_P(ApspTest, RoundsLinearInN) {
  Rng rng(80 + GetParam());
  const auto g = gen::erdos_renyi_connected(30, 0.15, rng);
  const auto res = distributed_unweighted_apsp(g);
  const Dist d = unweighted_diameter(g);
  // Token walk ~3n plus wave tail; generous constant.
  EXPECT_LE(res.stats.rounds, 6 * 30 + 4 * d + 20);
  EXPECT_GE(res.stats.rounds, 30u);  // must at least walk the token
}

INSTANTIATE_TEST_SUITE_P(Cases, ApspTest, ::testing::Range(0, 6));

TEST(ClassicalBaseline, DiameterAndRadiusExact) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const auto g = gen::erdos_renyi_connected(24, 0.15, rng);
    const auto d = classical_unweighted_diameter(g);
    const auto r = classical_unweighted_radius(g);
    EXPECT_EQ(d.value, unweighted_diameter(g));
    const auto ecc = eccentricities(g.unweighted_copy());
    EXPECT_EQ(r.value, *std::min_element(ecc.begin(), ecc.end()));
  }
}

TEST(ClassicalBaseline, PathDiameter) {
  const auto g = gen::path(15);
  EXPECT_EQ(classical_unweighted_diameter(g).value, 14u);
  EXPECT_EQ(classical_unweighted_radius(g).value, 7u);
}

// ---------------------------------------------------------------------
// Quantum unweighted search (LGM-style instantiation)
// ---------------------------------------------------------------------

TEST(QuantumUnweighted, FindsDiameterOnStructuredGraphs) {
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = gen::grid(5, 6);
    const auto res = quantum_unweighted_diameter(g, seed);
    hits += (res.value == unweighted_diameter(g));
    EXPECT_GT(res.rounds, 0u);
  }
  EXPECT_GE(hits, 9);
}

TEST(QuantumUnweighted, RadiusOnPath) {
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto res = quantum_unweighted_radius(gen::path(21), seed);
    hits += (res.value == 10u);
  }
  EXPECT_GE(hits, 9);
}

TEST(QuantumUnweighted, ChargesCallsTimesEval) {
  const auto g = gen::grid(4, 5);
  const auto res = quantum_unweighted_diameter(g, 7);
  EXPECT_GT(res.oracle_calls, 0u);
  EXPECT_GT(res.eval_rounds, 0u);
  // rounds = calls * (setup + eval) with setup <= eval.
  EXPECT_GE(res.rounds, res.oracle_calls * res.eval_rounds);
  EXPECT_LE(res.rounds, 2 * res.oracle_calls * res.eval_rounds);
}

// ---------------------------------------------------------------------
// Theorem 1.1
// ---------------------------------------------------------------------

struct T11Case {
  std::uint64_t seed;
  NodeId n;
  Weight max_w;
};

class Theorem11Test : public ::testing::TestWithParam<T11Case> {};

TEST_P(Theorem11Test, DiameterWithinApproximationBound) {
  const auto c = GetParam();
  const auto g = weighted_test_graph(c.seed, c.n, c.max_w);
  Theorem11Options opt;
  opt.seed = c.seed;
  opt.census = true;
  const auto res = quantum_weighted_diameter(g, opt);
  EXPECT_TRUE(res.distributed_value_matches);
  EXPECT_GE(res.good_sets, 1u) << "no good set sampled (seed effect)";
  EXPECT_GE(res.ratio, 1.0 - 1e-9);
  EXPECT_LE(res.ratio, (1 + res.epsilon) * (1 + res.epsilon) + 1e-9);
  EXPECT_TRUE(res.within_bound);
  EXPECT_GT(res.rounds, 0u);
  EXPECT_EQ(res.rounds, res.t0_outer +
                            res.outer_calls * (res.t1_outer + res.t2_outer));
  EXPECT_EQ(res.t2_outer,
            res.measured.t0_rounds +
                res.inner_budget_calls * (res.measured.t_setup_rounds +
                                          res.measured.t_eval_rounds));
}

TEST_P(Theorem11Test, RadiusWithinApproximationBound) {
  const auto c = GetParam();
  const auto g = weighted_test_graph(c.seed + 1000, c.n, c.max_w);
  Theorem11Options opt;
  opt.seed = c.seed;
  opt.census = true;
  const auto res = quantum_weighted_radius(g, opt);
  EXPECT_TRUE(res.distributed_value_matches);
  EXPECT_GE(res.ratio, 1.0 - 1e-9);
  EXPECT_LE(res.ratio, (1 + res.epsilon) * (1 + res.epsilon) + 1e-9);
  EXPECT_GT(res.rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Theorem11Test,
    ::testing::Values(T11Case{1, 24, 6}, T11Case{2, 32, 8},
                      T11Case{3, 32, 4}, T11Case{4, 40, 10},
                      T11Case{5, 48, 6}));

TEST(Theorem11, DeterministicGivenSeed) {
  const auto g = weighted_test_graph(9, 28, 5);
  Theorem11Options opt;
  opt.seed = 33;
  const auto a = quantum_weighted_diameter(g, opt);
  const auto b = quantum_weighted_diameter(g, opt);
  EXPECT_EQ(a.estimate_scaled, b.estimate_scaled);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.chosen_set, b.chosen_set);
}

TEST(Theorem11, WorksOnLowDiameterFamilies) {
  // Star-like family: D = 2, the regime where the paper's bound shines.
  Rng rng(4);
  auto g = gen::star(30);
  for (NodeId v = 1; v + 1 < 30; v += 3) g.add_edge(v, v + 1);
  g = gen::randomize_weights(g, 9, rng);
  Theorem11Options opt;
  opt.seed = 5;
  opt.census = true;
  const auto res = quantum_weighted_diameter(g, opt);
  EXPECT_LE(res.d_hat, 2u);
  EXPECT_TRUE(res.within_bound);
}

TEST(Theorem11, WorksOnHighDiameterFamilies) {
  Rng rng(6);
  auto g = gen::path_of_cliques(6, 5);
  g = gen::randomize_weights(g, 5, rng);
  Theorem11Options opt;
  opt.seed = 7;
  opt.census = true;
  const auto res = quantum_weighted_diameter(g, opt);
  EXPECT_TRUE(res.within_bound);
  EXPECT_TRUE(res.distributed_value_matches);
}

TEST(Theorem11, CrossFamilyStress) {
  // Topology families with very different D and weight regimes.
  Rng rng(21);
  std::vector<std::pair<const char*, WeightedGraph>> families;
  families.emplace_back("hypercube",
                        gen::randomize_weights(gen::hypercube(5), 9, rng));
  families.emplace_back("barbell",
                        gen::randomize_weights(gen::barbell(8, 6), 9, rng));
  families.emplace_back(
      "random tree", gen::randomize_weights(gen::random_tree(30, rng), 9,
                                            rng));
  families.emplace_back("planted heavy pair",
                        gen::planted_heavy_pair(30, 5, 400, rng));
  families.emplace_back(
      "random regular",
      gen::randomize_weights(gen::random_regular(32, 4, rng), 9, rng));
  for (auto& [name, g] : families) {
    Theorem11Options opt;
    opt.seed = 13;
    opt.census = true;
    const auto res = quantum_weighted_diameter(g, opt);
    EXPECT_TRUE(res.within_bound) << name << ": ratio " << res.ratio;
    EXPECT_TRUE(res.distributed_value_matches) << name;
    const auto rad = quantum_weighted_radius(g, opt);
    EXPECT_TRUE(rad.within_bound) << name << " (radius)";
    // The radius witness must be a decent center: its true eccentricity
    // is within the approximation window of the radius.
    const auto ecc = eccentricities(g);
    EXPECT_LE(static_cast<double>(ecc[rad.witness]),
              (1 + rad.epsilon) * (1 + rad.epsilon) *
                      static_cast<double>(rad.exact) +
                  1e-9)
        << name;
  }
}

TEST(Theorem11, RejectsDisconnectedOrTrivial) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(quantum_weighted_diameter(g), ArgumentError);
  EXPECT_THROW(quantum_weighted_diameter(WeightedGraph(1)), ArgumentError);
}

// ---------------------------------------------------------------------
// Cost models
// ---------------------------------------------------------------------

TEST(CostModel, Theorem11BeatsClassicalAtLowDiameter) {
  // D = polylog: n^{9/10} D^{3/10} << n for large n.
  const std::uint64_t n = 1 << 20;
  EXPECT_LT(model::theorem11_rounds(n, 10),
            model::classical_weighted_rounds(n));
}

TEST(CostModel, Theorem11CapsAtLinear) {
  const std::uint64_t n = 4096;
  // Huge D: the min{...} caps the bound at n (times polylog).
  EXPECT_LE(model::theorem11_rounds(n, n),
            static_cast<double>(n) * model::polylog(n) + 1);
}

TEST(CostModel, CrossoverNearCubeRootRegime) {
  // The advantage region is D = o(n^{1/3}): check both sides.
  const std::uint64_t n = 1 << 24;
  const auto d_small = static_cast<std::uint64_t>(std::pow(n, 1.0 / 3.0) / 8);
  const auto d_large = static_cast<std::uint64_t>(std::pow(n, 1.0 / 3.0) * 8);
  EXPECT_LT(model::theorem11_rounds(n, d_small) / model::polylog(n),
            static_cast<double>(n));
  EXPECT_GE(model::theorem11_rounds(n, d_large) / model::polylog(n),
            static_cast<double>(n) * 0.99);
}

TEST(CostModel, LowerBoundBelowUpperBound) {
  for (std::uint64_t n : {1u << 10, 1u << 14, 1u << 18}) {
    EXPECT_LT(model::theorem12_lower_bound(n), model::theorem11_rounds(n, 4));
    EXPECT_LT(model::theorem12_lower_bound(n), model::classical_lower_bound(n));
  }
}

TEST(CostModel, QuantumUnweightedBeatsThisWorkBound) {
  // Table 1's separation: unweighted sqrt(nD) is far below the weighted
  // n^{9/10} D^{3/10} at low D — weighted is strictly harder.
  const std::uint64_t n = 1 << 20;
  EXPECT_LT(model::lgm_unweighted_rounds(n, 16),
            model::theorem11_rounds(n, 16));
  // And the weighted lower bound n^{2/3} exceeds the unweighted upper
  // bound sqrt(nD) for small D (up to polylogs) — the separation claim.
  EXPECT_GT(model::theorem12_lower_bound(n) * model::polylog(n) *
                model::polylog(n) * model::polylog(n),
            model::lgm_unweighted_rounds(n, 4));
}

}  // namespace
}  // namespace qc::core
