// Tests for the quantum substrate: state-vector gates, Grover dynamics,
// the amplitude-exact search engine, cross-validation between the two,
// and the Lemma 3.1 framework accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "quantum/framework.h"
#include "quantum/search.h"
#include "quantum/statevector.h"
#include "util/rng.h"

namespace qc::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, StartsInZero) {
  StateVector sv(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, HadamardCreatesUniform) {
  StateVector sv(3);
  for (std::uint32_t q = 0; q < 3; ++q) sv.h(q);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_NEAR(sv.probability(x), 1.0 / 8.0, kTol);
  }
}

TEST(StateVector, HadamardIsInvolution) {
  StateVector sv(2);
  sv.h(0);
  sv.h(1);
  sv.h(0);
  sv.h(1);
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
}

TEST(StateVector, XFlipsBasisState) {
  StateVector sv(2);
  sv.x(0);
  EXPECT_NEAR(sv.probability(1), 1.0, kTol);
  sv.x(1);
  EXPECT_NEAR(sv.probability(3), 1.0, kTol);
}

TEST(StateVector, ZAddsPhaseOnOne) {
  StateVector sv(1);
  sv.h(0);
  sv.z(0);
  sv.h(0);
  // HZH = X.
  EXPECT_NEAR(sv.probability(1), 1.0, kTol);
}

TEST(StateVector, CnotEntanglesBellPair) {
  StateVector sv(2);
  sv.h(0);
  sv.cnot(0, 1);
  EXPECT_NEAR(sv.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(sv.probability(0b10), 0.0, kTol);
}

TEST(StateVector, CzPhaseOnlyOnBothSet) {
  StateVector sv(2);
  sv.h(0);
  sv.h(1);
  sv.cz(0, 1);
  // Probabilities unchanged (pure phase).
  for (std::uint64_t x = 0; x < 4; ++x) {
    EXPECT_NEAR(sv.probability(x), 0.25, kTol);
  }
  // But H on qubit 1 reveals the phase kickback:
  // (|00⟩+|01⟩+|10⟩−|11⟩)/2 → (|00⟩+|11⟩)/√2.
  sv.h(1);
  EXPECT_NEAR(sv.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(sv.probability(0b10), 0.0, kTol);
}

TEST(StateVector, GatePreservesNorm) {
  Rng rng(3);
  StateVector sv(4);
  for (std::uint32_t q = 0; q < 4; ++q) sv.h(q);
  sv.cnot(0, 2);
  sv.cz(1, 3);
  sv.x(2);
  sv.z(0);
  sv.oracle([](std::uint64_t x) { return x % 3 == 0; });
  sv.diffusion();
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(StateVector, SampleFollowsDistribution) {
  StateVector sv(2);
  sv.h(0);  // 50/50 on states 0 and 1
  Rng rng(7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[sv.sample(rng)]++;
  EXPECT_NEAR(counts[0] / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(counts[1] / 10000.0, 0.5, 0.03);
  EXPECT_EQ(counts[2] + counts[3], 0);
}

class GroverClosedFormTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint64_t>> {
};

TEST_P(GroverClosedFormTest, MatchesSineFormula) {
  const auto [qubits, marked_count] = GetParam();
  const std::size_t dim = std::size_t{1} << qubits;
  auto marked = [m = marked_count](std::uint64_t x) { return x < m; };
  for (std::uint64_t t : {0ull, 1ull, 2ull, 3ull, 5ull}) {
    const StateVector sv = grover_run(qubits, marked, t);
    double p_good = 0;
    for (std::uint64_t x = 0; x < dim; ++x) {
      if (marked(x)) p_good += sv.probability(x);
    }
    EXPECT_NEAR(p_good, grover_success_probability(dim, marked_count, t),
                1e-9)
        << "qubits=" << qubits << " m=" << marked_count << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, GroverClosedFormTest,
    ::testing::Values(std::pair{3u, 1ull}, std::pair{4u, 1ull},
                      std::pair{4u, 3ull}, std::pair{5u, 2ull},
                      std::pair{6u, 8ull}, std::pair{8u, 1ull}));

TEST(GroverClosedForm, OptimalIterationNearlyCertain) {
  // ~pi/4*sqrt(N) iterations for one marked item out of 256.
  const double p = grover_success_probability(256, 1, 12);
  EXPECT_GT(p, 0.99);
}

// ---------------------------------------------------------------------
// Amplitude-level search vs state vector
// ---------------------------------------------------------------------

TEST(AmplifiedMeasure, AgreesWithStateVectorStatistics) {
  const std::uint32_t qubits = 4;
  const std::size_t dim = 16;
  auto marked_fn = [](std::size_t x) { return x == 5 || x == 11; };
  const std::vector<double> uniform(dim, 1.0 / dim);
  for (std::uint64_t t : {1ull, 2ull, 4ull}) {
    // Exact probability from the full state vector.
    const StateVector sv = grover_run(
        qubits, [&](std::uint64_t x) { return marked_fn(x); }, t);
    double p_exact = 0;
    for (std::size_t x = 0; x < dim; ++x) {
      if (marked_fn(x)) p_exact += sv.probability(x);
    }
    // Empirical frequency from the amplitude-level engine.
    Rng rng(42 + t);
    int hits = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
      hits += amplified_measure(uniform, marked_fn, t, rng).found;
    }
    EXPECT_NEAR(hits / static_cast<double>(trials), p_exact, 0.035)
        << "t=" << t;
  }
}

TEST(AmplifiedMeasure, HandlesNonUniformWeights) {
  std::vector<double> w{0.7, 0.1, 0.1, 0.1};
  auto marked = [](std::size_t x) { return x == 0; };
  Rng rng(9);
  // One Grover iteration with good mass 0.7: p = sin(3*asin(sqrt(.7)))^2.
  const double theta = std::asin(std::sqrt(0.7));
  const double p_exact = std::pow(std::sin(3 * theta), 2);
  int hits = 0;
  const int trials = 6000;
  for (int i = 0; i < trials; ++i) {
    hits += amplified_measure(w, marked, 1, rng).found;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), p_exact, 0.03);
}

TEST(AmplifiedMeasure, DegenerateMasses) {
  Rng rng(10);
  const std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  auto none = [](std::size_t) { return false; };
  auto all = [](std::size_t) { return true; };
  EXPECT_FALSE(amplified_measure(w, none, 3, rng).found);
  EXPECT_TRUE(amplified_measure(w, all, 3, rng).found);
}

TEST(AmplifiedMeasure, RejectsBadWeights) {
  Rng rng(11);
  auto any = [](std::size_t) { return true; };
  EXPECT_THROW(amplified_measure({}, any, 1, rng), ArgumentError);
  EXPECT_THROW(amplified_measure({0.0, 0.0}, any, 1, rng), ArgumentError);
  EXPECT_THROW(amplified_measure({-1.0, 2.0}, any, 1, rng), ArgumentError);
}

TEST(Bbht, FindsPlantedElementWithExpectedCalls) {
  const std::size_t n = 1024;
  std::vector<double> w(n, 1.0);
  auto marked = [](std::size_t x) { return x == 137; };
  Rng rng(13);
  int found = 0;
  std::uint64_t total_calls = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const auto res = bbht_search(w, marked, 100000, rng);
    found += res.found;
    total_calls += res.oracle_calls;
    if (res.found) {
      EXPECT_EQ(res.index, 137u);
    }
  }
  EXPECT_EQ(found, trials);
  // Expected O(sqrt(n)) ~ 32; allow generous constant.
  EXPECT_LT(total_calls / trials, 40 * 32u);
  EXPECT_GT(total_calls / trials, 4u);
}

TEST(Bbht, BudgetExhaustionOnEmptyMarkedSet) {
  std::vector<double> w(64, 1.0);
  auto none = [](std::size_t) { return false; };
  Rng rng(17);
  const auto res = bbht_search(w, none, 500, rng);
  EXPECT_FALSE(res.found);
  EXPECT_GE(res.oracle_calls, 500u);
}

TEST(Lemma31Budget, ScalesAsInverseSqrtRho) {
  const auto b1 = lemma31_budget(0.01, 0.01);
  const auto b2 = lemma31_budget(0.0001, 0.01);
  EXPECT_NEAR(static_cast<double>(b2) / static_cast<double>(b1), 10.0, 0.5);
  EXPECT_THROW(lemma31_budget(0.0, 0.1), ArgumentError);
  EXPECT_THROW(lemma31_budget(0.5, 1.0), ArgumentError);
}

TEST(QuantumMaxFind, FindsTopValueWithHighProbability) {
  const std::size_t n = 256;
  std::vector<std::int64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<std::int64_t>(i % 50);
  values[200] = 1000;  // unique max
  std::vector<double> w(n, 1.0);
  Rng rng(19);
  int exact_hits = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const auto res = quantum_max_find(
        values, w, lemma31_budget(1.0 / n, 0.01), rng);
    exact_hits += (res.value == 1000);
  }
  EXPECT_GE(exact_hits, trials * 9 / 10);
}

// The Lemma 3.1 guarantee: reach the top-ρ mass with probability
// >= 1 - δ within the budget.
class Lemma31GuaranteeTest : public ::testing::TestWithParam<double> {};

TEST_P(Lemma31GuaranteeTest, ReachesTopRhoMass) {
  const double rho = GetParam();
  const std::size_t n = 500;
  const auto top = static_cast<std::size_t>(rho * n);
  std::vector<std::int64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = (i < top) ? 100 : static_cast<std::int64_t>(i % 40);
  }
  std::vector<double> w(n, 1.0);
  Rng rng(23);
  const double delta = 0.05;
  int ok = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const auto res =
        quantum_max_find(values, w, lemma31_budget(rho, delta), rng);
    ok += (res.value == 100);
  }
  EXPECT_GE(ok, static_cast<int>(trials * (1.0 - 2 * delta)));
}

INSTANTIATE_TEST_SUITE_P(Rhos, Lemma31GuaranteeTest,
                         ::testing::Values(0.01, 0.05, 0.2));

// ---------------------------------------------------------------------
// Framework accounting
// ---------------------------------------------------------------------

TEST(Framework, RoundsFollowLemma31Formula) {
  OptimizationProblem p;
  p.values = {5, 1, 9, 3};
  p.weights = {1, 1, 1, 1};
  p.t0_rounds = 100;
  p.t_setup_rounds = 7;
  p.t_eval_rounds = 3;
  p.rho = 0.25;
  p.delta = 0.05;
  Rng rng(29);
  const auto res = framework_maximize(p, rng);
  EXPECT_EQ(res.rounds, 100 + res.oracle_calls * 10);
  EXPECT_EQ(res.budget_calls, lemma31_budget(0.25, 0.05));
  EXPECT_EQ(res.value, 9);
  EXPECT_EQ(res.index, 2u);
}

TEST(Framework, MinimizeFindsSmallest) {
  OptimizationProblem p;
  p.values = {5, 1, 9, 3, 7, 8, 2, 6};
  p.weights.assign(8, 1.0);
  p.rho = 1.0 / 8;
  p.delta = 0.02;
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 30; ++i) {
    const auto res = framework_minimize(p, rng);
    hits += (res.value == 1);
  }
  EXPECT_GE(hits, 27);
}

TEST(Framework, RejectsMalformedProblem) {
  OptimizationProblem p;
  p.values = {1, 2};
  p.weights = {1.0};
  Rng rng(1);
  EXPECT_THROW(framework_maximize(p, rng), ArgumentError);
  p.values.clear();
  p.weights.clear();
  EXPECT_THROW(framework_maximize(p, rng), ArgumentError);
}

}  // namespace
}  // namespace qc::quantum
