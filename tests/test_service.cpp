// Tests for the resident query service (src/service): built-in handler
// correctness against the direct algorithms, the determinism contract
// (byte-identical results at any worker count, client concurrency, and
// batch size), admission control, registry extension, metrics export,
// and the NDJSON wire codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/update.h"
#include "paths/reference.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "service/query_engine.h"
#include "service/wire.h"
#include "util/rng.h"

namespace qc::service {
namespace {

WeightedGraph test_graph(NodeId n = 40, std::uint64_t seed = 3) {
  Rng rng(seed);
  return gen::from_family("ER", n, 10, rng);
}

WeightedGraph disconnected_graph() {
  WeightedGraph g(6);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 5);
  return g;
}

/// A deterministic mixed workload exercising every built-in plus the
/// unweighted extension types. Pure function of (count, n) — the
/// determinism tests replay it against engines of every shape.
std::vector<Query> mixed_queries(std::size_t count, NodeId n) {
  static const char* kTypes[] = {
      "diameter",        "radius",              "eccentricity",
      "sssp",            "approx_distance",     "unweighted_diameter",
      "unweighted_eccentricity"};
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.id = i + 1;
    q.type = kTypes[i % (sizeof(kTypes) / sizeof(kTypes[0]))];
    q.node = static_cast<NodeId>((i * 13) % n);
    q.target = static_cast<NodeId>((i * 7 + 1) % n);
    q.seed = 1000 + i;
    qs.push_back(q);
  }
  return qs;
}

EngineOptions manual_options(unsigned workers = 1) {
  EngineOptions opt;
  opt.workers = workers;
  opt.auto_dispatch = false;
  return opt;
}

/// Reference answers: one single-worker engine, synchronous queries in
/// order. Everything else must reproduce these exactly.
std::map<std::uint64_t, QueryResult> reference_results(
    const std::vector<Query>& qs, const WeightedGraph& g) {
  QueryEngine engine(manual_options(1));
  register_unweighted_handlers(engine);
  engine.add_graph("g0", g);
  std::map<std::uint64_t, QueryResult> out;
  for (const Query& q : qs) out[q.id] = engine.query(q);
  return out;
}

TEST(QueryEngine, BuiltinsMatchDirectAlgorithms) {
  const auto g = test_graph();
  ASSERT_TRUE(g.is_connected());
  const auto ecc = eccentricities(g);
  const auto hop_ecc = unweighted_eccentricities(g);

  QueryEngine engine(manual_options(2));
  register_unweighted_handlers(engine);
  engine.add_graph("g0", g);

  Query q;
  q.type = "diameter";
  EXPECT_EQ(engine.query(q).value, *std::max_element(ecc.begin(), ecc.end()));
  q.type = "radius";
  EXPECT_EQ(engine.query(q).value, *std::min_element(ecc.begin(), ecc.end()));
  q.type = "eccentricity";
  q.node = 17;
  EXPECT_EQ(engine.query(q).value, ecc[17]);
  q.type = "unweighted_diameter";
  EXPECT_EQ(engine.query(q).value,
            *std::max_element(hop_ecc.begin(), hop_ecc.end()));
  q.type = "unweighted_eccentricity";
  EXPECT_EQ(engine.query(q).value, hop_ecc[17]);

  q.type = "sssp";
  q.node = 5;
  q.target = 23;
  const auto sssp = engine.query(q);
  ASSERT_TRUE(sssp.ok);
  EXPECT_EQ(sssp.dist, dijkstra(g, 5));
  EXPECT_EQ(sssp.value, sssp.dist[23]);

  // Lemma 3.2 sandwich: when the pair is eligible at this ℓ, the
  // σ-scaled approximation bounds the true distance from above within
  // the (1+ε) factor.
  q.type = "approx_distance";
  q.node = 5;
  q.target = 23;
  const auto approx = engine.query(q);
  ASSERT_TRUE(approx.ok);
  const auto& params = engine.find_graph("g0")->toolkit_params();
  EXPECT_GT(approx.scale, 1u);
  if (approx.value < kInfDist) {
    const double d = static_cast<double>(dijkstra(g, 5)[23]);
    const double a =
        static_cast<double>(approx.value) / static_cast<double>(approx.scale);
    EXPECT_GE(a + 1e-9, d);
    EXPECT_LE(a, (1.0 + 1.0 / params.eps_inv) * d + 1e-9);
  }
}

TEST(QueryEngine, ResultsIdenticalAcrossWorkersAndConcurrentClients) {
  const auto g = test_graph();
  const auto qs = mixed_queries(42, g.node_count());
  const auto ref = reference_results(qs, g);

  for (const unsigned workers : {1u, 2u, 8u}) {
    EngineOptions opt;
    opt.workers = workers;  // auto_dispatch on: the background thread drains
    QueryEngine engine(opt);
    register_unweighted_handlers(engine);
    engine.add_graph("g0", g);

    // Four clients submit disjoint interleaved slices concurrently.
    constexpr std::size_t kClients = 4;
    std::vector<std::vector<std::pair<std::uint64_t, std::future<QueryResult>>>>
        futs(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < qs.size(); i += kClients) {
          futs[c].emplace_back(qs[i].id, engine.submit(qs[i]));
        }
      });
    }
    for (auto& t : clients) t.join();
    for (auto& per_client : futs) {
      for (auto& [id, fut] : per_client) {
        const QueryResult got = fut.get();
        ASSERT_EQ(got, ref.at(id)) << "workers=" << workers << " id=" << id;
      }
    }
  }
}

TEST(QueryEngine, BatchSizeDoesNotChangeResults) {
  const auto g = test_graph();
  const auto qs = mixed_queries(30, g.node_count());
  const auto ref = reference_results(qs, g);

  for (const std::size_t max_batch : {std::size_t{1}, qs.size()}) {
    EngineOptions opt;
    opt.workers = 2;
    opt.auto_dispatch = false;
    opt.max_batch = max_batch;
    QueryEngine engine(opt);
    register_unweighted_handlers(engine);
    engine.add_graph("g0", g);

    std::vector<std::pair<std::uint64_t, std::future<QueryResult>>> futs;
    for (const Query& q : qs) futs.emplace_back(q.id, engine.submit(q));
    EXPECT_EQ(engine.in_flight(), qs.size());
    std::size_t drained = 0;
    std::size_t rounds = 0;
    while (const std::size_t n = engine.drain()) {
      drained += n;
      ++rounds;
      ASSERT_LE(n, max_batch);
    }
    EXPECT_EQ(drained, qs.size());
    EXPECT_EQ(rounds, (qs.size() + max_batch - 1) / max_batch);
    EXPECT_EQ(engine.in_flight(), 0u);
    for (auto& [id, fut] : futs) {
      ASSERT_EQ(fut.get(), ref.at(id)) << "max_batch=" << max_batch;
    }
  }
}

TEST(QueryEngine, AdmissionControlBoundsInFlightQueries) {
  runtime::MetricsRegistry registry;
  EngineOptions opt;
  opt.workers = 1;
  opt.auto_dispatch = false;
  opt.max_in_flight = 4;
  opt.metrics = &registry;
  QueryEngine engine(opt);
  engine.add_graph("g0", test_graph(16));

  Query q;
  q.type = "diameter";
  std::vector<std::future<QueryResult>> futs;
  for (std::size_t i = 0; i < 4; ++i) futs.push_back(engine.submit(q));
  EXPECT_EQ(engine.in_flight(), 4u);
  EXPECT_THROW(engine.submit(q), AdmissionError);
  EXPECT_THROW(engine.submit(q), AdmissionError);
  EXPECT_EQ(registry.counter("service.rejected").value(), 2u);

  // Draining frees capacity; the engine admits again.
  EXPECT_GT(engine.drain(), 0u);
  EXPECT_EQ(engine.in_flight(), 0u);
  futs.push_back(engine.submit(q));
  engine.drain();
  for (auto& fut : futs) EXPECT_TRUE(fut.get().ok);
}

TEST(QueryEngine, ShutdownAnswersEveryAdmittedQuery) {
  std::vector<std::future<QueryResult>> futs;
  {
    QueryEngine engine(manual_options());
    engine.add_graph("g0", test_graph(16));
    Query q;
    q.type = "radius";
    for (std::size_t i = 0; i < 3; ++i) {
      q.id = i;
      futs.push_back(engine.submit(q));
    }
    // No drain() before destruction: the destructor must answer them.
  }
  for (auto& fut : futs) {
    const QueryResult r = fut.get();
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.value, 0u);
  }
}

TEST(QueryEngine, ErrorsArriveAsResultsNotExceptions) {
  QueryEngine engine(manual_options());
  engine.add_graph("a", test_graph(16, 1));
  engine.add_graph("b", disconnected_graph());

  Query q;
  q.type = "no_such_type";
  q.graph = "a";
  auto r = engine.query(q);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown query type"), std::string::npos);

  q.type = "diameter";
  q.graph = "missing";
  r = engine.query(q);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown graph"), std::string::npos);

  // Two graphs loaded: an empty graph name is ambiguous.
  q.graph.clear();
  r = engine.query(q);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exactly one"), std::string::npos);

  // Handler precondition failures fail the query, not the engine.
  q.graph = "b";
  r = engine.query(q);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not connected"), std::string::npos);

  q.graph = "a";
  q.type = "eccentricity";
  q.node = 999;
  r = engine.query(q);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos);

  // The engine still works after every error.
  q.node = 0;
  EXPECT_TRUE(engine.query(q).ok);
}

/// The registry extension point: a new query type plugs in without
/// touching the engine (exactly how the unweighted and Theorem 1.1
/// specializations register).
class NodeCountHandler final : public QueryHandler {
 public:
  std::string type() const override { return "node_count"; }
  void run_batch(QueryContext& ctx, std::span<const Query> queries,
                 std::span<QueryResult> results) override {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i].ok = true;
      results[i].value = ctx.graph.graph().node_count();
    }
  }
};

TEST(QueryEngine, HandlerRegistryAcceptsExtensions) {
  QueryEngine engine(manual_options());
  engine.add_graph("g0", test_graph(16));
  EXPECT_FALSE(engine.has_handler("node_count"));
  engine.register_handler(std::make_unique<NodeCountHandler>());
  EXPECT_TRUE(engine.has_handler("node_count"));

  Query q;
  q.type = "node_count";
  EXPECT_EQ(engine.query(q).value, 16u);

  EXPECT_THROW(engine.register_handler(std::make_unique<NodeCountHandler>()),
               ArgumentError);
  EXPECT_THROW(engine.add_graph("g0", test_graph(8)), ArgumentError);
}

TEST(QueryEngine, MetricsExportCountsAndLatencies) {
  runtime::MetricsRegistry registry;
  EngineOptions opt;
  opt.workers = 1;
  opt.auto_dispatch = false;
  opt.metrics = &registry;
  QueryEngine engine(opt);
  engine.add_graph("g0", test_graph(16));

  Query q;
  q.type = "diameter";
  std::vector<std::future<QueryResult>> futs;
  for (std::size_t i = 0; i < 3; ++i) futs.push_back(engine.submit(q));
  engine.drain();
  for (auto& fut : futs) fut.get();
  q.type = "no_such_type";
  engine.query(q);

  EXPECT_EQ(registry.counter("service.queries").value(), 4u);
  EXPECT_EQ(registry.counter("service.queries.diameter").value(), 3u);
  EXPECT_EQ(registry.counter("service.errors").value(), 1u);
  EXPECT_EQ(registry.counter("service.batches").value(), 1u);
  auto& lat = registry.histogram("service.latency_seconds.diameter",
                                 latency_histogram_bounds());
  EXPECT_EQ(lat.count(), 3u);
  EXPECT_GE(lat.quantile(0.95), lat.quantile(0.5));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("service.queries"), std::string::npos);
  EXPECT_NE(json.find("service.latency_seconds.diameter"), std::string::npos);
}

TEST(QueryEngine, WarmBuildsArtifactsUpFront) {
  QueryEngine engine(manual_options(2));
  engine.add_graph("g0", test_graph(24));
  auto* ctx = engine.find_graph("g0");
  ASSERT_NE(ctx, nullptr);
  auto w = ctx->warm_state();
  EXPECT_FALSE(w.weighted_ecc);
  EXPECT_FALSE(w.hop_ecc);
  engine.warm_all();
  w = ctx->warm_state();
  EXPECT_TRUE(w.csr);
  EXPECT_TRUE(w.connectivity);
  EXPECT_TRUE(w.weighted_ecc);
  EXPECT_TRUE(w.hop_ecc);

  // Warming a disconnected graph builds what is well-defined and skips
  // the connected-only tables instead of throwing.
  engine.add_graph("parts", disconnected_graph());
  engine.warm("parts");
  EXPECT_FALSE(engine.find_graph("parts")->warm_state().weighted_ecc);
}

TEST(QueryEngine, Theorem11HandlerMatchesDirectRunAndSharesCache) {
  const auto g = test_graph(20, 7);
  QueryEngine engine(manual_options());
  register_theorem11_handlers(engine);
  engine.add_graph("g0", g);

  Query q;
  q.type = "t11_diameter";
  q.seed = 5;
  const auto first = engine.query(q);
  ASSERT_TRUE(first.ok) << first.error;

  core::Theorem11Options opt;
  opt.seed = 5;
  opt.oracle_mode = core::OracleMode::kLazySerial;
  const auto direct = core::quantum_weighted_diameter(g, opt);
  EXPECT_EQ(first.value, direct.estimate_scaled);
  EXPECT_EQ(first.scale, direct.total_scale);

  // The resident cache now holds first-level rows; the repeat query
  // reuses them and must reproduce the answer exactly.
  ASSERT_NE(engine.find_graph("g0"), nullptr);
  EXPECT_GT(engine.find_graph("g0")->warm_state().toolkit_rows, 0u);
  EXPECT_EQ(engine.query(q), first);

  q.type = "t11_radius";
  const auto radius = engine.query(q);
  ASSERT_TRUE(radius.ok) << radius.error;
  EXPECT_LE(radius.value / radius.scale, first.value / first.scale);
}

// ---------------------------------------------------------------------------
// Memory-mapped resident graphs (ISSUE 10)

/// Writes `g` as a bcsr image and returns the path.
std::string write_test_bcsr(const WeightedGraph& g, const std::string& name) {
  const std::string path = ::testing::TempDir() + "qc_service_" + name;
  write_csr(g.csr(), path);
  return path;
}

TEST(QueryEngine, MappedSpecsShareOneMappingAndAnswerIdentically) {
  const auto g = test_graph(32, 9);
  const std::string path = write_test_bcsr(g, "shared.bcsr");

  QueryEngine engine(manual_options());
  register_unweighted_handlers(engine);
  auto& a = engine.add_graph_mapped("g0", path);
  auto& b = engine.add_graph_mapped("g1", path);
  EXPECT_TRUE(a.is_mapped());
  EXPECT_TRUE(b.is_mapped());
  EXPECT_EQ(a.source_path(), path);
  EXPECT_EQ(a.node_count(), g.node_count());
  EXPECT_EQ(a.edge_count(), g.edge_count());

  // Two specs naming one file share one mapping: same base address,
  // and the engine registry plus both context views pin it.
  ASSERT_NE(a.mapping_address(), nullptr);
  EXPECT_EQ(a.mapping_address(), b.mapping_address());
  EXPECT_GE(a.mapping_use_count(), 3);

  EXPECT_THROW(engine.add_graph_mapped("g0", path), ArgumentError);
  EXPECT_THROW(engine.add_graph_mapped("gx", path + ".missing"),
               ArgumentError);

  // The mixed workload (including approx_distance, which materializes
  // the owned WeightedGraph for the toolkit) answers exactly like an
  // owned-copy engine.
  const auto qs = mixed_queries(21, g.node_count());
  const auto ref = reference_results(qs, g);
  for (Query q : qs) {
    q.graph = "g0";
    QueryResult got = engine.query(q);
    QueryResult want = ref.at(q.id);
    want.id = got.id;  // ids match by construction; compare payloads
    ASSERT_EQ(got, want) << "id=" << q.id << " type=" << q.type;
  }

  // Toolkit materialization is not the copy-on-write detach: reads
  // still serve from the mapped view afterwards.
  EXPECT_TRUE(a.is_mapped());
  const auto w = a.warm_state();
  EXPECT_TRUE(w.mapped);
  EXPECT_TRUE(w.materialized);
  EXPECT_FALSE(b.warm_state().materialized);
}

TEST(QueryEngine, MappedUpdateDetachesExactlyOnce) {
  const auto g = test_graph(28, 11);
  ASSERT_GE(g.edge_count(), 1u);
  const Edge e = g.edges().front();
  const std::string path = write_test_bcsr(g, "detach.bcsr");

  QueryEngine engine(manual_options());
  auto& a = engine.add_graph_mapped("a", path);
  auto& b = engine.add_graph_mapped("b", path);

  // Direct apply_update on "a" (rebuild policy): the first update
  // performs the copy-on-write detach and reports it; the second finds
  // owned storage and must not report a detach again.
  runtime::ThreadPool pool(2);
  {
    std::unique_lock<std::shared_mutex> lock(a.state_mutex());
    const auto first =
        a.apply_update(GraphUpdate{}.reweight(e.u, e.v, e.weight + 1), pool,
                       /*incremental=*/false);
    EXPECT_TRUE(first.stats.mapped_detached);
    EXPECT_EQ(first.stats.reweighted, 1u);
    const auto second =
        a.apply_update(GraphUpdate{}.reweight(e.u, e.v, e.weight + 2), pool,
                       /*incremental=*/true);
    EXPECT_FALSE(second.stats.mapped_detached);
  }
  EXPECT_FALSE(a.is_mapped());
  EXPECT_FALSE(a.warm_state().mapped);
  EXPECT_TRUE(a.warm_state().materialized);

  // "b" still serves from the mapping "a" left behind.
  EXPECT_TRUE(b.is_mapped());
  ASSERT_NE(b.mapping_address(), nullptr);

  // The engine's "update" handler drives the same detach on "b".
  Query up;
  up.type = "update";
  up.graph = "b";
  up.op = "reweight";
  up.node = e.u;
  up.target = e.v;
  up.weight = e.weight + 2;
  const auto r = engine.query(up);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, g.edge_count());
  EXPECT_FALSE(b.is_mapped());

  // Both detached copies answer like owned graphs with the same edits.
  WeightedGraph expect_g = g;
  expect_g.apply(GraphUpdate{}.reweight(e.u, e.v, e.weight + 2),
                 UpdatePolicy::kRebuild);
  const auto ecc = eccentricities(expect_g);
  const Dist want = *std::max_element(ecc.begin(), ecc.end());
  Query q;
  q.type = "diameter";
  for (const char* name : {"a", "b"}) {
    q.graph = name;
    const auto res = engine.query(q);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.value, want) << name;
  }
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(Wire, ParsesFullRequest) {
  const Query q = parse_request(
      R"( {"id":7, "graph":"g1", "type":"sssp", "node":5, "target":9,)"
      R"( "seed":42} )");
  EXPECT_EQ(q.id, 7u);
  EXPECT_EQ(q.graph, "g1");
  EXPECT_EQ(q.type, "sssp");
  EXPECT_EQ(q.node, 5u);
  EXPECT_EQ(q.target, 9u);
  EXPECT_EQ(q.seed, 42u);

  // "source" is a synonym for "node"; defaults hold elsewhere.
  const Query s = parse_request(R"({"type":"eccentricity","source":3})");
  EXPECT_EQ(s.node, 3u);
  EXPECT_EQ(s.id, 0u);
  EXPECT_EQ(s.seed, 1u);
  EXPECT_TRUE(s.graph.empty());
}

TEST(Wire, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request(""), ArgumentError);
  EXPECT_THROW(parse_request("{}"), ArgumentError);           // no type
  EXPECT_THROW(parse_request(R"({"type":""})"), ArgumentError);
  EXPECT_THROW(parse_request(R"({"typ":"diameter"})"), ArgumentError);
  EXPECT_THROW(parse_request(R"({"type":"d"} x)"), ArgumentError);
  EXPECT_THROW(parse_request(R"({"type":"d","id":-1})"), ArgumentError);
  EXPECT_THROW(parse_request(R"({"type":"d","id":1.5})"), ArgumentError);
  EXPECT_THROW(parse_request(R"({"type":"d","node":4294967296})"),
               ArgumentError);  // > 32 bits
  EXPECT_THROW(parse_request(R"({"type":"d","node":{}})"), ArgumentError);
  EXPECT_THROW(parse_request(R"({"type":"d")"), ArgumentError);
}

TEST(Wire, FormatsResponsesDeterministically) {
  QueryResult r;
  r.id = 3;
  r.type = "diameter";
  r.ok = true;
  r.value = 17;
  EXPECT_EQ(format_response(r),
            R"({"id":3,"ok":true,"type":"diameter","value":17})");

  r.type = "approx_distance";
  r.value = 840;
  r.scale = 120;
  EXPECT_EQ(format_response(r),
            R"({"id":3,"ok":true,"type":"approx_distance","value":840,)"
            R"("scale":120,"approx":7})");

  r.value = kInfDist;  // ineligible pair: the sentinel prints as "inf"
  EXPECT_EQ(format_response(r),
            R"({"id":3,"ok":true,"type":"approx_distance","value":"inf",)"
            R"("scale":120})");

  QueryResult sssp;
  sssp.id = 4;
  sssp.type = "sssp";
  sssp.ok = true;
  sssp.value = 2;
  sssp.dist = {0, 2, kInfDist};
  EXPECT_EQ(format_response(sssp),
            R"({"id":4,"ok":true,"type":"sssp","value":2,)"
            R"("dist":[0,2,"inf"]})");

  QueryResult err;
  err.id = 9;
  err.type = "diameter";
  err.error = "unknown graph: \"g9\"";
  EXPECT_EQ(format_response(err),
            R"({"id":9,"ok":false,"type":"diameter",)"
            R"("error":"unknown graph: \"g9\""})");

  EXPECT_EQ(format_rejection(12, "engine saturated"),
            R"({"id":12,"ok":false,"code":"rejected",)"
            R"("error":"engine saturated"})");
}

TEST(Wire, RoundTripsThroughEngine) {
  QueryEngine engine(manual_options());
  engine.add_graph("g0", test_graph(16));
  const auto r = engine.query(parse_request(R"({"id":5,"type":"radius"})"));
  EXPECT_TRUE(r.ok);
  const std::string line = format_response(r);
  EXPECT_EQ(line.find(R"({"id":5,"ok":true,"type":"radius","value":)"), 0u);
}

}  // namespace
}  // namespace qc::service
