// Tests for the Section 4 machinery: boolean functions, approximate
// degree (Lemma 4.6), gadget graphs (Figures 1-4, Lemmas 4.3/4.4/4.9),
// Table 2, and the Lemma 4.1 simulation schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"
#include "lowerbound/approxdeg.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/gadget.h"
#include "lowerbound/server.h"
#include "lowerbound/table2.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace qc::lb {
namespace {

// ---------------------------------------------------------------------
// Boolean functions
// ---------------------------------------------------------------------

TEST(BoolFn, FRequiresEveryRowHit) {
  PairInput in;
  in.rows = 2;
  in.cols = 2;
  in.x = {1, 0, 0, 1};
  in.y = {1, 0, 0, 0};
  EXPECT_FALSE(eval_f(in));  // row 1 has no common 1
  EXPECT_TRUE(eval_f_prime(in));
  in.y = {1, 0, 0, 1};
  EXPECT_TRUE(eval_f(in));
}

TEST(BoolFn, GeneratorsProduceIntendedValues) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto hit = input_all_hit(4, 3, rng);
    EXPECT_TRUE(eval_f(hit));
    const auto miss = input_one_row_miss(4, 3, trial % 4, rng);
    EXPECT_FALSE(eval_f(miss));
  }
}

TEST(BoolFn, GdtIsOrOfAnds) {
  EXPECT_FALSE(eval_gdt(0b0000, 0b1111));
  EXPECT_TRUE(eval_gdt(0b0010, 0b0010));
  EXPECT_FALSE(eval_gdt(0b0101, 0b1010));
  EXPECT_TRUE(eval_gdt(0b1111, 0b1000));
}

TEST(BoolFn, VerDefinition) {
  for (std::uint8_t x = 0; x < 4; ++x) {
    for (std::uint8_t y = 0; y < 4; ++y) {
      EXPECT_EQ(eval_ver(x, y), ((x + y) % 4 == 0 || (x + y) % 4 == 1))
          << int(x) << "," << int(y);
    }
  }
}

// Lemma 4.7's key structural fact: under the promise encodings, GDT
// computes exactly VER — for all 16 promise pairs.
TEST(BoolFn, VerIsPromiseVersionOfGdt) {
  for (std::uint8_t x = 0; x < 4; ++x) {
    for (std::uint8_t y = 0; y < 4; ++y) {
      EXPECT_EQ(eval_gdt(ver_promise_x(x), ver_promise_y(y)),
                eval_ver(x, y))
          << int(x) << "," << int(y);
    }
  }
}

// F = (AND ∘ OR) ∘ GDT blockwise: group the ℓ columns of each row into
// blocks of 4; F equals f = AND ∘ OR over the per-block GDT values.
TEST(BoolFn, FDecomposesThroughGdt) {
  Rng rng(7);
  const std::size_t rows = 8;
  const std::size_t cols = 8;  // two GDT blocks per row
  for (int trial = 0; trial < 50; ++trial) {
    const auto in = random_input(rows, cols, rng);
    bool composed = true;
    for (std::size_t i = 0; i < rows && composed; ++i) {
      bool row = false;
      for (std::size_t blk = 0; blk < cols / 4; ++blk) {
        std::uint8_t x4 = 0;
        std::uint8_t y4 = 0;
        for (std::size_t t = 0; t < 4; ++t) {
          x4 |= static_cast<std::uint8_t>(in.xb(i, 4 * blk + t) << t);
          y4 |= static_cast<std::uint8_t>(in.yb(i, 4 * blk + t) << t);
        }
        row = row || eval_gdt(x4, y4);
      }
      composed = row;
    }
    EXPECT_EQ(composed, eval_f(in)) << "trial " << trial;
  }
}

TEST(Formula, AndOfOrsShapeAndSemantics) {
  const auto f = and_of_ors(3, 2);
  EXPECT_EQ(f->leaf_count(), 6u);
  EXPECT_TRUE(f->is_read_once());
  EXPECT_TRUE(f->eval({1, 0, 0, 1, 1, 1}));
  EXPECT_FALSE(f->eval({1, 0, 0, 0, 1, 1}));
}

TEST(Formula, OrOf) {
  const auto f = or_of(4);
  EXPECT_TRUE(f->is_read_once());
  EXPECT_FALSE(f->eval({0, 0, 0, 0}));
  EXPECT_TRUE(f->eval({0, 0, 1, 0}));
}

TEST(Formula, RandomReadOnceIsReadOnce) {
  Rng rng(11);
  for (std::size_t leaves : {1u, 2u, 5u, 9u, 16u}) {
    for (int t = 0; t < 10; ++t) {
      const auto f = random_read_once(leaves, rng);
      EXPECT_EQ(f->leaf_count(), leaves);
      EXPECT_TRUE(f->is_read_once());
    }
  }
}

TEST(Formula, TruthTableMatchesEval) {
  const auto f = and_of_ors(2, 2);
  const auto table = truth_table(*f, 4);
  ASSERT_EQ(table.size(), 16u);
  // f = (x0 | x1) & (x2 | x3).
  for (std::size_t m = 0; m < 16; ++m) {
    const bool expect = ((m & 1) || (m & 2)) && ((m & 4) || (m & 8));
    EXPECT_EQ(table[m] != 0, expect) << m;
  }
}

// ---------------------------------------------------------------------
// Approximate degree
// ---------------------------------------------------------------------

TEST(Simplex, SolvesTinyLp) {
  // min -x1 - x2 s.t. x1 + x2 + s = 1 -> objective -1.
  const auto res = simplex_solve({{1, 1, 1}}, {1}, {-1, -1, 0});
  ASSERT_TRUE(res.feasible);
  ASSERT_TRUE(res.bounded);
  EXPECT_NEAR(res.objective, -1.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x1 = 1 and x1 = 2 simultaneously (x >= 0).
  const auto res = simplex_solve({{1}, {1}}, {1, 2}, {0});
  EXPECT_FALSE(res.feasible);
}

TEST(MinimaxError, ConstantFit) {
  // Fit a constant to {0, 1}: best error 1/2.
  const double e = minimax_error({{1.0}, {1.0}}, {0.0, 1.0});
  EXPECT_NEAR(e, 0.5, 1e-7);
}

TEST(MinimaxError, ExactInterpolation) {
  // Line through 2 points: zero error.
  const double e = minimax_error({{1.0, 0.0}, {1.0, 1.0}}, {0.3, 0.9});
  EXPECT_NEAR(e, 0.0, 1e-7);
}

TEST(ApproxDegree, KnownSmallValues) {
  EXPECT_EQ(approx_degree_symmetric(and_levels(1), 1.0 / 3), 1u);
  EXPECT_EQ(approx_degree_symmetric(and_levels(2), 1.0 / 3), 1u);
  EXPECT_EQ(approx_degree_symmetric(or_levels(2), 1.0 / 3), 1u);
  // Smaller eps forces full degree on one variable.
  EXPECT_EQ(approx_degree_symmetric(and_levels(1), 0.01), 1u);
}

TEST(ApproxDegree, ParityNeedsFullDegree) {
  // PARITY_k has approximate degree k for any eps < 1/2.
  for (std::size_t k : {2u, 3u, 4u}) {
    std::vector<std::uint8_t> table(std::size_t{1} << k);
    for (std::size_t m = 0; m < table.size(); ++m) {
      table[m] = static_cast<std::uint8_t>(__builtin_popcountll(m) & 1);
    }
    EXPECT_EQ(approx_degree(table, k, 1.0 / 3), k) << k;
  }
}

TEST(ApproxDegree, GeneralAgreesWithSymmetric) {
  for (std::size_t k : {2u, 3u, 4u}) {
    std::vector<std::uint8_t> and_table(std::size_t{1} << k, 0);
    and_table.back() = 1;
    EXPECT_EQ(approx_degree(and_table, k, 1.0 / 3),
              approx_degree_symmetric(and_levels(k), 1.0 / 3))
        << "AND_" << k;
    std::vector<std::uint8_t> or_table(std::size_t{1} << k, 1);
    or_table[0] = 0;
    EXPECT_EQ(approx_degree(or_table, k, 1.0 / 3),
              approx_degree_symmetric(or_levels(k), 1.0 / 3))
        << "OR_" << k;
  }
}

TEST(ApproxDegree, MonotoneInK) {
  std::uint32_t prev = 0;
  for (std::size_t k = 1; k <= 36; k += 5) {
    const auto d = approx_degree_symmetric(and_levels(k), 1.0 / 3);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

// Lemma 4.6 quantitatively: deg_{1/3}(AND_k) fits k^e with e ~ 1/2.
TEST(ApproxDegree, SqrtScalingForAndK) {
  std::vector<double> ks, ds;
  for (std::size_t k : {4u, 9u, 16u, 25u, 36u, 49u, 64u}) {
    ks.push_back(static_cast<double>(k));
    ds.push_back(static_cast<double>(
        approx_degree_symmetric(and_levels(k), 1.0 / 3)));
  }
  const auto [e, c] = fit_power_law(ks, ds);
  EXPECT_GT(e, 0.35);
  EXPECT_LT(e, 0.65);
  (void)c;
}

TEST(ApproxDegree, RejectsBadArgs) {
  EXPECT_THROW(approx_degree_symmetric({}, 0.3), ArgumentError);
  EXPECT_THROW(approx_degree_symmetric({0.0, 1.0}, 0.6), ArgumentError);
  EXPECT_THROW(approx_degree({0, 1}, 2, 0.3), ArgumentError);
}

// ---------------------------------------------------------------------
// Gadgets
// ---------------------------------------------------------------------

TEST(Gadget, PaperParamsFollowEquationTwo) {
  const auto p = GadgetParams::paper(4);
  EXPECT_EQ(p.h, 4u);
  EXPECT_EQ(p.s, 6u);
  EXPECT_EQ(p.ell, 4u);
  EXPECT_EQ(p.node_count(),
            (2ull << 4) * 1 - 1 + 16ull * (2 * 6 + 4) + 2 * (1ull << 6) +
                2 * (2 * 6 + 4));
}

TEST(Gadget, BuildsConnectedGraphWithExpectedSize) {
  Rng rng(1);
  const auto p = GadgetParams::paper(2);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  EXPECT_EQ(g.graph().node_count(), p.node_count());
  EXPECT_TRUE(g.graph().is_connected());
  g.graph().validate();
  const Gadget gr(p, in, true);
  EXPECT_EQ(gr.graph().node_count(), p.node_count() + 1);
  EXPECT_TRUE(gr.graph().is_connected());
}

TEST(Gadget, UnweightedDiameterIsLogarithmic) {
  Rng rng(2);
  for (std::uint32_t h : {2u, 4u}) {
    const auto p = GadgetParams::paper(h);
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const Gadget g(p, in, false);
    const Dist d = unweighted_diameter(g.graph());
    EXPECT_GE(d, h);
    EXPECT_LE(d, 4u * h + 8u);
  }
}

TEST(Gadget, SidePartition) {
  Rng rng(3);
  const auto p = GadgetParams::paper(2);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  EXPECT_EQ(g.side(g.root()), Side::kServer);
  EXPECT_EQ(g.side(g.path(0, 0)), Side::kServer);
  EXPECT_EQ(g.side(g.a(0)), Side::kAlice);
  EXPECT_EQ(g.side(g.a_star(0)), Side::kAlice);
  EXPECT_EQ(g.side(g.b(1)), Side::kBob);
  EXPECT_EQ(g.side(g.b_bit(0, 1)), Side::kBob);
}

TEST(Gadget, ContractionMatchesExplicitContractedForm) {
  Rng rng(4);
  const auto p = GadgetParams::paper(2);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget full(p, in, false);
  const ContractedGadget direct(p, in, false);
  const auto contracted = contract_unit_edges(full.graph());
  EXPECT_EQ(contracted.graph.node_count(), direct.graph().node_count());
  EXPECT_EQ(weighted_diameter(contracted.graph),
            weighted_diameter(direct.graph()));
  EXPECT_EQ(weighted_radius(contracted.graph),
            weighted_radius(direct.graph()));
}

class GadgetLemmaTest : public ::testing::TestWithParam<std::uint64_t> {};

// Lemma 4.4 on the full (uncontracted) gadget, exact diameter.
TEST_P(GadgetLemmaTest, Lemma44FullGraph) {
  Rng rng(GetParam());
  const auto p = GadgetParams::paper(2);
  const auto in = (GetParam() % 3 == 0)
                      ? input_all_hit(1ull << p.s, p.ell, rng)
                      : (GetParam() % 3 == 1)
                            ? input_one_row_miss(1ull << p.s, p.ell,
                                                 GetParam() % (1ull << p.s),
                                                 rng)
                            : random_input(1ull << p.s, p.ell, rng);
  const auto check = check_diameter_reduction(p, in, /*use_full_graph=*/true);
  EXPECT_TRUE(check.gap_respected)
      << "F=" << check.f_value << " D=" << check.measured
      << " low=" << check.threshold_low << " high=" << check.threshold_high;
  EXPECT_TRUE(check.distinguishable);
}

TEST_P(GadgetLemmaTest, Lemma44ContractedForm) {
  Rng rng(GetParam() + 100);
  const auto p = GadgetParams::paper(4);
  const auto in = (GetParam() % 2 == 0)
                      ? input_all_hit(1ull << p.s, p.ell, rng)
                      : input_one_row_miss(1ull << p.s, p.ell, 3, rng);
  const auto check = check_diameter_reduction(p, in, false);
  EXPECT_EQ(check.f_value, GetParam() % 2 == 0);
  EXPECT_TRUE(check.gap_respected);
}

TEST_P(GadgetLemmaTest, Lemma49Radius) {
  Rng rng(GetParam() + 200);
  const auto p = GadgetParams::paper(2);
  PairInput in;
  if (GetParam() % 3 == 0) {
    in = input_all_hit(1ull << p.s, p.ell, rng);
  } else if (GetParam() % 3 == 1) {
    // All-zero y: F' = 0.
    in = random_input(1ull << p.s, p.ell, rng);
    std::fill(in.y.begin(), in.y.end(), 0);
  } else {
    in = random_input(1ull << p.s, p.ell, rng);
  }
  const auto full = check_radius_reduction(p, in, /*use_full_graph=*/true);
  EXPECT_TRUE(full.gap_respected)
      << "F'=" << full.f_value << " R=" << full.measured
      << " low=" << full.threshold_low << " high=" << full.threshold_high;
  const auto contracted = check_radius_reduction(p, in, false);
  EXPECT_TRUE(contracted.gap_respected);
  EXPECT_EQ(full.f_value, contracted.f_value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GadgetLemmaTest,
                         ::testing::Range<std::uint64_t>(0, 9));

// Lemma 4.3 sandwich on actual gadget instances.
TEST(Gadget, Lemma43SandwichOnGadget) {
  Rng rng(5);
  const auto p = GadgetParams::paper(2);
  for (int t = 0; t < 3; ++t) {
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const Gadget full(p, in, false);
    const ContractedGadget direct(p, in, false);
    const Dist dg = weighted_diameter(full.graph());
    const Dist dc = weighted_diameter(direct.graph());
    EXPECT_LE(dc, dg);
    EXPECT_LE(dg, dc + full.graph().node_count());
  }
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

TEST(Table2, AllRowsHoldOnRandomInstances) {
  Rng rng(6);
  const auto p = GadgetParams::paper(2);
  for (int t = 0; t < 4; ++t) {
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const auto rows = audit_table2(p, in);
    EXPECT_EQ(rows.size(), 13u);
    for (const auto& row : rows) {
      EXPECT_TRUE(row.ok) << row.u_class << " -> " << row.v_class
                          << " measured " << row.measured_max << " bound "
                          << row.bound;
      EXPECT_GT(row.pairs, 0u);
    }
  }
}

TEST(Table2, StarRowsAreTightAtBeta) {
  // With an all-zero input every a_i - a_j^* edge has weight β and the
  // bound β is attained.
  Rng rng(7);
  const auto p = GadgetParams::paper(2);
  auto in = random_input(1ull << p.s, p.ell, rng);
  std::fill(in.x.begin(), in.x.end(), 0);
  std::fill(in.y.begin(), in.y.end(), 0);
  const auto rows = audit_table2(p, in);
  bool saw_beta_tight = false;
  for (const auto& row : rows) {
    EXPECT_TRUE(row.ok);
    if (row.bound_name == "beta" && row.measured_max == row.bound) {
      saw_beta_tight = true;
    }
  }
  EXPECT_TRUE(saw_beta_tight);
}

// ---------------------------------------------------------------------
// Simulation lemma (Lemma 4.1)
// ---------------------------------------------------------------------

TEST(SimulationSchedule, InitialStateAndFixedSides) {
  Rng rng(8);
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  const SimulationSchedule sched(g);
  EXPECT_EQ(sched.horizon(), 8u);
  EXPECT_EQ(sched.owner(0, g.root()), Owner::kServer);
  EXPECT_EQ(sched.owner(0, g.path(0, 0)), Owner::kServer);
  for (std::uint64_t r = 0; r < sched.horizon(); ++r) {
    EXPECT_EQ(sched.owner(r, g.a(0)), Owner::kAlice);
    EXPECT_EQ(sched.owner(r, g.b(0)), Owner::kBob);
  }
}

TEST(SimulationSchedule, ServerRegionShrinksFromBothEnds) {
  Rng rng(9);
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  const SimulationSchedule sched(g);
  const std::uint64_t row = 1ull << p.h;
  for (std::uint64_t r = 1; r + 1 < sched.horizon(); ++r) {
    // Left end of each path slides to Alice, right end to Bob.
    EXPECT_EQ(sched.owner(r, g.path(0, r - 1)), Owner::kAlice);
    EXPECT_EQ(sched.owner(r, g.path(0, r)), Owner::kServer);
    // Server keeps 1-based positions up to 2^h - r, i.e. 0-based
    // row - r - 1; Bob owns everything to the right of it.
    EXPECT_EQ(sched.owner(r, g.path(0, row - r - 1)), Owner::kServer);
    EXPECT_EQ(sched.owner(r, g.path(0, row - r)), Owner::kBob);
  }
}

TEST(SimulationSchedule, OwnershipIsMonotone) {
  Rng rng(10);
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  const SimulationSchedule sched(g);
  for (NodeId v = 0; v < g.graph().node_count(); v += 7) {
    Owner prev = sched.owner(0, v);
    for (std::uint64_t r = 1; r < sched.horizon(); ++r) {
      const Owner cur = sched.owner(r, v);
      if (prev != Owner::kServer) {
        EXPECT_EQ(cur, prev) << "node " << v << " round " << r;
      }
      prev = cur;
    }
  }
}

TEST(SimulationLemma, BfsTraceMetersWithinBound) {
  Rng rng(11);
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  const auto rep = run_and_meter_bfs(g, 5);
  EXPECT_GT(rep.total_messages, 0u);
  EXPECT_TRUE(rep.partition_sound);
  EXPECT_TRUE(rep.charged_only_tree);
  EXPECT_TRUE(rep.within_bound);
  EXPECT_LE(rep.max_charged_in_round, 2ull * p.h);
}

TEST(SimulationLemma, RejectsTooLongExecutions) {
  Rng rng(12);
  const auto p = GadgetParams::paper(2);  // horizon 2
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  EXPECT_THROW(run_and_meter_bfs(g, 10), ArgumentError);
}

TEST(Theorem42Bound, GrowsWithGadgetSize) {
  const auto p2 = GadgetParams::paper(2);
  const auto p4 = GadgetParams::paper(4);
  EXPECT_GT(theorem42_round_bound(p4, 32), theorem42_round_bound(p2, 32));
  EXPECT_GT(theorem42_round_bound(p2, 16), theorem42_round_bound(p2, 32));
}

}  // namespace
}  // namespace qc::lb
