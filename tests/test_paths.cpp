// Tests for the Nanongkai toolkit: parameters, the centralized reference
// (Lemmas 3.2/3.3), the distributed Algorithms 1-5, and bit-exact
// agreement between the two implementations.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/distributed.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "util/rng.h"

namespace qc::paths {
namespace {

WeightedGraph test_graph(std::uint64_t seed, NodeId n, Weight max_w) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 0.15, rng);
  return gen::randomize_weights(g, max_w, rng);
}

TEST(Params, MakeFollowsEquationOne) {
  const auto p = Params::make(1024, 16);
  EXPECT_EQ(p.eps_inv, 10u);
  // r = 1024^0.4 * 16^-0.2 = 16 / 1.741 ~ 9.19 -> 9
  EXPECT_EQ(p.r, 9u);
  // ell = 1024*10/9 ~ 1138 -> clamped to n
  EXPECT_EQ(p.ell, 1024u);
  EXPECT_EQ(p.k, 4u);
  EXPECT_EQ(p.sigma(), 2 * 1024 * 10u);
  EXPECT_EQ(p.rounded_cap(), 21 * 1024u);
}

TEST(Params, ClampsAtSmallN) {
  const auto p = Params::make(4, 1);
  EXPECT_GE(p.r, 1u);
  EXPECT_LE(p.ell, 4u);
  EXPECT_GE(p.k, 1u);
}

TEST(Params, RejectsDegenerateInput) {
  EXPECT_THROW(Params::make(1, 1), ArgumentError);
  EXPECT_THROW(Params::make(8, 0), ArgumentError);
}

TEST(HopScale, RoundedWeightCeiling) {
  HopScale hs{4, 2, 10};  // sigma = 16
  EXPECT_EQ(hs.rounded_weight(1, 0), 16u);
  EXPECT_EQ(hs.rounded_weight(1, 3), 2u);
  EXPECT_EQ(hs.rounded_weight(1, 5), 1u);  // ceil(16/32)
  EXPECT_EQ(hs.rounded_weight(3, 4), 3u);  // ceil(48/16)
}

TEST(HopScale, TopScaleRoundsEveryWeightToOne) {
  HopScale hs{7, 3, 29};
  const std::uint32_t top = hs.scale_count() - 1;
  for (std::uint64_t w = 1; w <= hs.max_weight; ++w) {
    EXPECT_EQ(hs.rounded_weight(w, top), 1u) << "w=" << w;
  }
}

// ---------------------------------------------------------------------
// Lemma 3.2: d <= d̃^ℓ/σ <= (1+ε)·d^ℓ, in exact integer form
//   σ·d <= d̃_σ   and   eps_inv·d̃_σ <= (eps_inv+1)·σ·d^ℓ.
// ---------------------------------------------------------------------
class Lemma32Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma32Test, ApproximationSandwich) {
  const auto g = test_graph(GetParam(), 20, 12);
  for (const std::uint64_t ell : {3ull, 7ull, 19ull}) {
    const HopScale hs{ell, 3, g.max_weight()};
    for (NodeId s = 0; s < g.node_count(); s += 5) {
      const auto dt = approx_bounded_hop_from(g, s, hs);
      const auto exact = dijkstra(g, s);
      const auto hop = bounded_hop_distances(g, s, ell);
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (dt[v] >= kInfDist) {
          // No eligible scale: d^ℓ may still be finite only if it is
          // very long; the top scale guarantees eligibility whenever
          // the ℓ-hop distance exists.
          EXPECT_EQ(hop[v], kInfDist) << "s=" << s << " v=" << v;
          continue;
        }
        EXPECT_GE(dt[v], hs.sigma() * exact[v]) << "s=" << s << " v=" << v;
        // The (1+ε) upper bound is stated against d^ℓ, so it only
        // constrains pairs with an ℓ-hop path. (d̃ can still be finite
        // without one: eligibility caps the rounded distance, not the
        // hop count.)
        if (hop[v] < kInfDist) {
          EXPECT_LE(hs.eps_inv * dt[v],
                    (hs.eps_inv + 1) * hs.sigma() * hop[v])
              << "s=" << s << " v=" << v;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma32Test,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Algorithm 2 vs capped Dijkstra
// ---------------------------------------------------------------------
class Alg2Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Alg2Test, MatchesCappedDijkstra) {
  const auto g = test_graph(GetParam(), 18, 9);
  const Dist cap = 30;
  const auto res = distributed_bounded_distance_sssp(
      g, RunRequest{}.with_source(2).with_cap(cap).with_weight_of(
             [](Weight w) { return w; }));
  const auto exact = dijkstra(g, 2);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(res.dist[v], exact[v] <= cap ? exact[v] : kInfDist)
        << "v=" << v;
  }
  EXPECT_EQ(res.stats.rounds, cap + 2);
}

TEST_P(Alg2Test, MatchesCappedDijkstraUnderRounding) {
  const auto g = test_graph(GetParam() + 100, 16, 7);
  const HopScale hs{5, 2, g.max_weight()};
  for (std::uint32_t i = 0; i < hs.scale_count(); i += 2) {
    const auto wf = [&](Weight w) { return hs.rounded_weight(w, i); };
    const auto res = distributed_bounded_distance_sssp(
        g, RunRequest{}.with_source(0).with_cap(hs.rounded_cap())
               .with_weight_of(wf));
    const auto exact = dijkstra(g.reweighted(wf), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(res.dist[v],
                exact[v] <= hs.rounded_cap() ? exact[v] : kInfDist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Alg2Test,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------
// Algorithm 1 vs reference Lemma 3.2 values (bit exact)
// ---------------------------------------------------------------------
class Alg1Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Alg1Test, MatchesReferenceBitExact) {
  const auto g = test_graph(GetParam() + 40, 16, 8);
  const HopScale hs{6, 3, g.max_weight()};
  for (NodeId s : {NodeId{0}, NodeId{7}}) {
    const auto res = distributed_bounded_hop_sssp(
        g, RunRequest{}.with_source(s).with_scale(hs));
    const auto ref = approx_bounded_hop_from(g, s, hs);
    EXPECT_EQ(res.approx, ref) << "source " << s;
    EXPECT_EQ(res.stats.rounds,
              static_cast<std::uint64_t>(hs.scale_count()) *
                  (hs.rounded_cap() + 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Alg1Test,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------
// Algorithm 3 vs reference (bit exact), including the delay machinery
// ---------------------------------------------------------------------
class Alg3Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Alg3Test, MatchesReferenceForAllSources) {
  const auto g = test_graph(GetParam() + 70, 16, 6);
  const HopScale hs{5, 3, g.max_weight()};
  const std::vector<NodeId> sources{1, 4, 9, 13};
  Rng rng(GetParam());
  const auto res = distributed_multi_source_bhs(
      g, RunRequest{}.with_sources(sources).with_scale(hs).with_rng(rng));
  for (std::size_t a = 0; a < sources.size(); ++a) {
    const auto ref = approx_bounded_hop_from(g, sources[a], hs);
    EXPECT_EQ(res.approx[a], ref) << "source index " << a;
  }
  EXPECT_LE(res.attempts, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Alg3Test,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------
// Algorithms 4+5 vs the reference skeleton (bit exact)
// ---------------------------------------------------------------------
struct SkeletonFixture {
  WeightedGraph g;
  Params params;
  std::vector<NodeId> set;
  Skeleton ref;
  MultiSourceResult ms;
  OverlayEmbedding emb;

  explicit SkeletonFixture(std::uint64_t seed, NodeId n = 18)
      : g(test_graph(seed, n, 6)),
        params(Params::make(n, unweighted_diameter(g))) {
    Rng rng(seed * 31 + 1);
    for (NodeId v = 0; v < n; ++v) {
      if (rng.chance(static_cast<double>(params.r) / n)) set.push_back(v);
    }
    if (set.empty()) set.push_back(0);
    ref = build_skeleton(g, params, set);
    const HopScale hs{params.ell, params.eps_inv, g.max_weight()};
    Rng delays(seed * 17 + 3);
    ms = distributed_multi_source_bhs(
        g, RunRequest{}.with_sources(set).with_scale(hs).with_rng(delays));
    emb = distributed_embed_overlay(
        g, ms.approx, RunRequest{}.with_sources(set).with_params(params));
  }
};

class SkeletonTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkeletonTest, EmbeddingMatchesReference) {
  SkeletonFixture fx(GetParam());
  EXPECT_EQ(fx.emb.w1, fx.ref.overlay_w1);
  EXPECT_EQ(fx.emb.nearest_k, fx.ref.nearest_k);
  EXPECT_EQ(fx.emb.w2, fx.ref.overlay_w2);
  EXPECT_EQ(fx.emb.max_w2, fx.ref.overlay_scale.max_weight);
}

TEST_P(SkeletonTest, OverlaySsspMatchesReference) {
  SkeletonFixture fx(GetParam());
  for (std::uint32_t s = 0; s < fx.set.size(); ++s) {
    const auto res = distributed_overlay_sssp(
        fx.g, fx.emb,
        RunRequest{}.with_params(fx.params).with_overlay_source(s));
    EXPECT_EQ(res.approx, fx.ref.overlay_approx[s]) << "source idx " << s;
  }
}

TEST_P(SkeletonTest, Observation312HoldsForKNearest) {
  SkeletonFixture fx(GetParam());
  // The H-based k-nearest distances must equal the full-overlay-metric
  // distances for the selected k nearest nodes.
  const std::size_t b = fx.ref.size();
  for (std::size_t a = 0; a < b; ++a) {
    for (const std::uint32_t c : fx.ref.nearest_k[a]) {
      EXPECT_EQ(fx.ref.overlay_w2[a][c],
                std::min(fx.ref.overlay_w1[a][c], fx.ref.overlay_dist1[a][c]))
          << "a=" << a << " c=" << c;
    }
  }
}

// Lemma 3.3 sandwich: σσ″·d <= d̃_{G,w,S} <= (1+ε)²·σσ″·d, integer form.
TEST_P(SkeletonTest, Lemma33ApproximationSandwich) {
  SkeletonFixture fx(GetParam());
  const std::uint64_t total = fx.ref.total_scale();
  const std::uint64_t ei = fx.params.eps_inv;
  for (std::uint32_t s = 0; s < fx.ref.size(); ++s) {
    const auto exact = dijkstra(fx.g, fx.ref.members[s]);
    for (NodeId v = 0; v < fx.g.node_count(); ++v) {
      const Dist ad = fx.ref.approx_distance(s, v);
      ASSERT_LT(ad, kInfDist) << "s=" << s << " v=" << v;
      EXPECT_GE(ad, total * exact[v]);
      EXPECT_LE(ei * ei * ad, (ei + 1) * (ei + 1) * total * exact[v]);
    }
  }
}

TEST_P(SkeletonTest, ApproxEccentricityIsMaxOfApproxDistances) {
  SkeletonFixture fx(GetParam());
  for (std::uint32_t s = 0; s < fx.ref.size(); ++s) {
    Dist mx = 0;
    for (NodeId v = 0; v < fx.g.node_count(); ++v) {
      mx = std::max(mx, fx.ref.approx_distance(s, v));
    }
    EXPECT_EQ(fx.ref.approx_eccentricity(s), mx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonTest,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(Skeleton, SingletonSetWorks) {
  const auto g = test_graph(5, 12, 4);
  const auto params = Params::make(12, unweighted_diameter(g));
  const auto sk = build_skeleton(g, params, {3});
  EXPECT_EQ(sk.size(), 1u);
  const auto exact = dijkstra(g, 3);
  for (NodeId v = 0; v < 12; ++v) {
    EXPECT_GE(sk.approx_distance(0, v), sk.total_scale() * exact[v]);
  }
}

TEST(Skeleton, RejectsBadSets) {
  const auto g = test_graph(6, 10, 4);
  const auto params = Params::make(10, unweighted_diameter(g));
  EXPECT_THROW(build_skeleton(g, params, {}), ArgumentError);
  EXPECT_THROW(build_skeleton(g, params, {1, 1}), ArgumentError);
  EXPECT_THROW(build_skeleton(g, params, {10}), ArgumentError);
}

}  // namespace
}  // namespace qc::paths
