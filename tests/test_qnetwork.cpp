// Tests for the qubit-level quantum CONGEST network: model enforcement
// (locality, adjacency, qubit bandwidth), measurement collapse, and the
// CNOT-copy broadcast of Lemma 3.5's Setup step.
#include <gtest/gtest.h>

#include <cmath>

#include "congest/primitives.h"
#include "graph/generators.h"
#include "quantum/qnetwork.h"
#include "util/rng.h"

namespace qc::quantum {
namespace {

constexpr double kTol = 1e-9;

TEST(StateVectorMeasurement, MarginalOfPlusState) {
  StateVector sv(2);
  sv.h(0);
  EXPECT_NEAR(sv.marginal_one(0), 0.5, kTol);
  EXPECT_NEAR(sv.marginal_one(1), 0.0, kTol);
}

TEST(StateVectorMeasurement, CollapseBellPair) {
  StateVector sv(2);
  sv.h(0);
  sv.cnot(0, 1);
  sv.collapse(0, true);
  EXPECT_NEAR(sv.probability(0b11), 1.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVectorMeasurement, CollapseRejectsImpossibleOutcome) {
  StateVector sv(1);
  EXPECT_THROW(sv.collapse(0, true), ArgumentError);  // |0>, outcome 1
}

TEST(QuantumNetwork, EnforcesLocality) {
  const auto g = gen::path(3);
  QuantumNetwork net(g, 3);
  net.place(1, 1);
  EXPECT_THROW(net.h(0, 1), ModelError);      // foreign qubit
  EXPECT_THROW(net.cnot(1, 1, 2), ModelError);  // target not owned
  net.h(1, 1);                                  // fine
}

TEST(QuantumNetwork, EnforcesAdjacency) {
  const auto g = gen::path(3);
  QuantumNetwork net(g, 1);
  EXPECT_THROW(net.send_qubit(0, 2, 0), ModelError);  // 0-2 not an edge
  net.send_qubit(0, 1, 0);
  net.end_round();
  EXPECT_EQ(net.owner(0), 1u);
  EXPECT_EQ(net.rounds(), 1u);
}

TEST(QuantumNetwork, EnforcesQubitBandwidth) {
  const auto g = gen::path(2);
  QuantumNetwork net(g, 3, /*qubit_bandwidth=*/2);
  net.send_qubit(0, 1, 0);
  net.send_qubit(0, 1, 1);
  EXPECT_THROW(net.send_qubit(0, 1, 2), ModelError);
  net.end_round();
  EXPECT_EQ(net.owner(0), 1u);
  EXPECT_EQ(net.owner(1), 1u);
  EXPECT_EQ(net.owner(2), 0u);
}

TEST(QuantumNetwork, PlacementFrozenAfterFirstRound) {
  const auto g = gen::path(2);
  QuantumNetwork net(g, 2);
  net.end_round();
  EXPECT_THROW(net.place(1, 1), ArgumentError);
}

TEST(QuantumNetwork, RemoteEntanglementSurvivesTransfer) {
  // Node 0 builds a Bell pair locally and ships one half to node 1:
  // the canonical "create entanglement, send one qubit" of the model.
  const auto g = gen::path(2);
  QuantumNetwork net(g, 2);
  net.h(0, 0);
  net.cnot(0, 0, 1);
  net.send_qubit(0, 1, 1);
  net.end_round();
  EXPECT_EQ(net.owner(1), 1u);
  Rng rng(3);
  const bool a = net.measure(0, 0, rng);
  const bool b = net.measure(1, 1, rng);
  EXPECT_EQ(a, b);  // perfectly correlated
}

class CnotBroadcastTest : public ::testing::TestWithParam<int> {};

TEST_P(CnotBroadcastTest, ProducesGhzInDepthRounds) {
  Rng rng(41);
  WeightedGraph g = GetParam() == 0   ? gen::path(6)
                    : GetParam() == 1 ? gen::star(7)
                    : GetParam() == 2 ? gen::balanced_binary_tree(7)
                                      : gen::erdos_renyi_connected(8, 0.3,
                                                                   rng);
  const auto tree = congest::build_bfs_tree(g, 0);
  std::vector<NodeId> parent(g.node_count());
  std::vector<Dist> depth(g.node_count());
  Dist max_depth = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    parent[v] = tree.nodes[v].parent;
    depth[v] = tree.nodes[v].depth;
    max_depth = std::max(max_depth, depth[v]);
  }

  QuantumNetwork net(g, g.node_count());
  const auto rounds = cnot_broadcast(net, parent, depth);
  EXPECT_EQ(rounds, max_depth);  // exactly tree-depth rounds

  // Every node owns its share.
  for (std::uint32_t v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(net.owner(v), v);
  }
  // The state is the n-qubit GHZ: half mass on |0..0>, half on |1..1>.
  const std::uint64_t all =
      (std::uint64_t{1} << g.node_count()) - 1;
  EXPECT_NEAR(net.state().probability(0), 0.5, kTol);
  EXPECT_NEAR(net.state().probability(all), 0.5, kTol);
  EXPECT_NEAR(net.state().norm(), 1.0, kTol);

  // Measuring any one share collapses every share consistently.
  Rng rng2(GetParam() + 5);
  const bool first = net.measure(0, 0, rng2);
  for (std::uint32_t v = 1; v < g.node_count(); ++v) {
    EXPECT_EQ(net.measure(static_cast<NodeId>(v), v, rng2), first);
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, CnotBroadcastTest,
                         ::testing::Range(0, 4));

class TeleportTest : public ::testing::TestWithParam<int> {};

TEST_P(TeleportTest, TransfersStateExactly) {
  // Prepare a known payload state per case, teleport it 0 -> 1, and
  // verify with a deterministic disentangling measurement.
  const auto g = gen::path(2);
  QuantumNetwork net(g, 3);  // payload=0, epr_local=1, epr_remote=2
  Rng rng(100 + GetParam());

  // Payload preparation: case 0: |1>; case 1: |->; case 2: |+>;
  // case 3: |0>.
  switch (GetParam()) {
    case 0: net.x(0, 0); break;
    case 1: net.x(0, 0); net.h(0, 0); break;
    case 2: net.h(0, 0); break;
    default: break;
  }

  share_bell_pair(net, 0, 1, 1, 2);
  EXPECT_EQ(net.owner(2), 1u);
  teleport(net, 0, 1, 0, 1, 2, rng);

  // Verification at the receiver (deterministic outcomes per case).
  switch (GetParam()) {
    case 0:
      EXPECT_TRUE(net.measure(1, 2, rng));
      break;
    case 1:  // H|-> = |1>
      net.h(1, 2);
      EXPECT_TRUE(net.measure(1, 2, rng));
      break;
    case 2:  // H|+> = |0>
      net.h(1, 2);
      EXPECT_FALSE(net.measure(1, 2, rng));
      break;
    default:
      EXPECT_FALSE(net.measure(1, 2, rng));
      break;
  }
  EXPECT_EQ(net.rounds(), 2u);  // Bell-pair shipment + classical bits
}

INSTANTIATE_TEST_SUITE_P(States, TeleportTest, ::testing::Range(0, 4));

TEST(Teleport, ManyRandomStatesViaRepetition) {
  // Statistical check on a superposition payload: teleport |+> and
  // measure in Z — outcomes should be ~50/50 across repetitions.
  Rng rng(7);
  int ones = 0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    QuantumNetwork net(gen::path(2), 3);
    net.h(0, 0);
    share_bell_pair(net, 0, 1, 1, 2);
    teleport(net, 0, 1, 0, 1, 2, rng);
    ones += net.measure(1, 2, rng);
  }
  EXPECT_NEAR(ones / double(trials), 0.5, 0.08);
}

}  // namespace
}  // namespace qc::quantum
