// Golden regression tests: fixed-seed end-to-end results pinned to the
// values the current implementation produces. These are deliberately
// brittle — any change to the engine's round accounting, the toolkit's
// fixed-point arithmetic, the search's randomness consumption, or the
// samplers will trip them, which is the point: the paper-facing numbers
// in EXPERIMENTS.md must not drift silently. Update the constants
// consciously when changing behaviour.
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/server.h"
#include "util/rng.h"

namespace qc {
namespace {

WeightedGraph golden_graph() {
  Rng rng(12345);
  auto g = gen::erdos_renyi_connected(32, 0.15, rng);
  return gen::randomize_weights(g, 8, rng);
}

TEST(Goldens, GraphGenerationIsStable) {
  const auto g = golden_graph();
  EXPECT_EQ(g.node_count(), 32u);
  EXPECT_EQ(g.edge_count(), 69u);
  EXPECT_EQ(g.max_weight(), 8u);
  EXPECT_EQ(unweighted_diameter(g), 6u);
  EXPECT_EQ(weighted_diameter(g), 25u);
  EXPECT_EQ(weighted_radius(g), 13u);
}

TEST(Goldens, Theorem11DiameterEndToEnd) {
  const auto g = golden_graph();
  core::Theorem11Options opt;
  opt.seed = 99;
  opt.census = true;
  const auto res = core::quantum_weighted_diameter(g, opt);
  EXPECT_EQ(res.exact, 25u);
  EXPECT_TRUE(res.within_bound);
  EXPECT_TRUE(res.distributed_value_matches);
  // Pin the full accounting chain.
  const auto expected_rounds =
      res.t0_outer + res.outer_calls * (res.t1_outer + res.t2_outer);
  EXPECT_EQ(res.rounds, expected_rounds);
  EXPECT_EQ(res.t2_outer,
            res.measured.t0_rounds +
                res.inner_budget_calls * (res.measured.t_setup_rounds +
                                          res.measured.t_eval_rounds));
  // Same seed, same everything.
  const auto res2 = core::quantum_weighted_diameter(g, opt);
  EXPECT_EQ(res2.rounds, res.rounds);
  EXPECT_EQ(res2.estimate_scaled, res.estimate_scaled);
  EXPECT_EQ(res2.chosen_set, res.chosen_set);
  EXPECT_EQ(res2.witness, res.witness);
}

TEST(Goldens, ClassicalBaselinesStable) {
  const auto g = golden_graph();
  const auto cu = core::classical_unweighted_diameter(g);
  EXPECT_EQ(cu.value, 6u);
  const auto cu2 = core::classical_unweighted_diameter(g);
  EXPECT_EQ(cu.stats.rounds, cu2.stats.rounds);  // deterministic
}

TEST(Goldens, GadgetIsStable) {
  const auto p = lb::GadgetParams::paper(4);
  EXPECT_EQ(p.node_count(), 447u);
  Rng rng(7);
  const auto in = lb::random_input(1ull << p.s, p.ell, rng);
  const lb::Gadget g(p, in, false);
  EXPECT_EQ(g.graph().node_count(), 447u);
  EXPECT_EQ(g.graph().edge_count(), 5870u);
  EXPECT_EQ(g.alpha(), 447u * 447u);
}

}  // namespace
}  // namespace qc
