// Tests for the runtime subsystem: work-stealing pool semantics, seed
// derivation, metrics instruments, and the sweep executor's determinism
// contract (identical aggregated JSON at any worker count).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "congest/primitives.h"
#include "congest/simulator.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "runtime/metrics.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"

namespace qc::runtime {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON syntax checker (recursive descent). The sweep writes
// machine-readable files; this parses them back so a malformed emitter
// fails here rather than in a downstream notebook.
// ---------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string_view want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ull, 2ull, 42ull}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      seen.insert(derive_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across bases or indices
}

// ---------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 16,
                            [&](std::size_t i) {
                              if (i == 7) {
                                throw ArgumentError("boom at 7");
                              }
                            }),
               ArgumentError);
  // The pool must stay usable after a failed batch.
  std::atomic<int> count{0};
  parallel_for(pool, 8, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  const auto out = parallel_map(pool, items, [](int v, std::size_t i) {
    EXPECT_EQ(static_cast<std::size_t>(v), i);
    return v * v;
  });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted: must not hang
  EXPECT_EQ(pool.worker_count(), 2u);
}

// The multi-source graph kernels fan out over the pool with per-source
// result slots; outputs must be byte-identical at any worker count.
// n >= 256 so the nullptr path also engages the shared kernel pool.
TEST(ThreadPool, GraphKernelsDeterministicAcrossWorkerCounts) {
  Rng rng(31);
  auto g = gen::erdos_renyi_connected(300, 0.03, rng);
  g = gen::randomize_weights(g, 90, rng);
  const CsrGraph& csr = g.csr();

  ThreadPool one(1);
  const auto ecc = eccentricities(csr, &one);
  const auto apsp = all_pairs_distances(csr, &one);
  const auto uecc = unweighted_eccentricities(csr, &one);
  const Dist ud = unweighted_diameter(csr, &one);
  const Dist hd = hop_diameter(csr, &one);

  for (const unsigned workers : {2u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(eccentricities(csr, &pool), ecc);
    EXPECT_EQ(all_pairs_distances(csr, &pool), apsp);
    EXPECT_EQ(unweighted_eccentricities(csr, &pool), uecc);
    EXPECT_EQ(unweighted_diameter(csr, &pool), ud);
    EXPECT_EQ(hop_diameter(csr, &pool), hd);
  }
  // nullptr -> shared pool (n >= the parallel threshold): same answers.
  EXPECT_EQ(eccentricities(csr), ecc);
  EXPECT_EQ(all_pairs_distances(csr), apsp);
  // And the WeightedGraph shims agree with the CSR overloads.
  EXPECT_EQ(eccentricities(g), ecc);
  EXPECT_EQ(hop_diameter(g), hd);
}

// ---------------------------------------------------------------------
// balanced_ranges: the prefix-sum chunking the sharded mailbox merge
// and the weighted round loop cut their work with.
// ---------------------------------------------------------------------

// Boundary invariants every cut must satisfy: starts at 0, ends at
// count, strictly increasing (no empty chunk), at most max_chunks.
void check_bounds(const std::vector<std::size_t>& b, std::size_t count,
                  std::size_t max_chunks) {
  ASSERT_GE(b.size(), 2u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), count);
  EXPECT_LE(b.size() - 1, std::max<std::size_t>(1, max_chunks));
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LT(b[i], b[i + 1]);
}

TEST(BalancedRanges, SplitsUniformWeightsEvenly) {
  std::vector<std::uint64_t> prefix(101);
  for (std::size_t i = 0; i <= 100; ++i) prefix[i] = i;  // weight 1 each
  const auto b = balanced_ranges(prefix, 4);
  check_bounds(b, 100, 4);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t c = 0; c + 1 < b.size(); ++c) {
    EXPECT_EQ(b[c + 1] - b[c], 25u);
  }
}

TEST(BalancedRanges, HeavyItemDoesNotStarveOtherChunks) {
  // One item holds ~97% of the weight; the cut must still hand every
  // chunk at least one item instead of collapsing around the hub.
  std::vector<std::uint64_t> prefix = {0, 1, 2, 100, 101, 102};
  const auto b = balanced_ranges(prefix, 4);
  check_bounds(b, 5, 4);
  ASSERT_EQ(b.size(), 5u);
}

TEST(BalancedRanges, ZeroTotalFallsBackToEvenCountSplit) {
  const std::vector<std::uint64_t> prefix(9, 0);  // 8 weightless items
  const auto b = balanced_ranges(prefix, 4);
  check_bounds(b, 8, 4);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t c = 0; c + 1 < b.size(); ++c) {
    EXPECT_EQ(b[c + 1] - b[c], 2u);
  }
}

TEST(BalancedRanges, FewerItemsThanChunksClampsChunkCount) {
  const std::vector<std::uint64_t> prefix = {0, 5, 9, 10};
  const auto b = balanced_ranges(prefix, 16);
  check_bounds(b, 3, 16);
  EXPECT_EQ(b.size(), 4u);  // 3 items -> at most 3 chunks
}

TEST(BalancedRanges, EmptyInputYieldsOneEmptyChunk) {
  const std::vector<std::uint64_t> prefix = {0};
  const auto b = balanced_ranges(prefix, 8);
  EXPECT_EQ(b, (std::vector<std::size_t>{0, 0}));
}

TEST(BalancedRanges, RejectsMissingLeadingZero) {
  const std::vector<std::uint64_t> prefix = {1, 2, 3};
  EXPECT_THROW(balanced_ranges(prefix, 2), ArgumentError);
}

TEST(BalancedRanges, ParallelForRangesCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> prefix(301);
  for (std::size_t i = 0; i <= 300; ++i) prefix[i] = i * i;  // skewed
  std::vector<std::size_t> bounds;
  balanced_ranges(prefix, 8, bounds);
  check_bounds(bounds, 300, 8);
  std::vector<std::atomic<int>> hits(300);
  parallel_for_ranges(pool, bounds,
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------
// Metrics instruments
// ---------------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  MetricsRegistry reg;
  auto& c = reg.counter("events");
  ThreadPool pool(4);
  parallel_for(pool, 1000, [&](std::size_t) { c.add(2); });
  EXPECT_EQ(c.value(), 2000u);
  EXPECT_EQ(&c, &reg.counter("events"));  // same instrument on re-lookup
}

TEST(Metrics, HistogramBucketsObservationsByUpperBound) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (const double v : {0.5, 1.0, 1.5, 3.0, 4.0, 7.9, 8.0, 9.0, 100.0}) {
    h.observe(v);
  }
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);  // 4 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0   (v <= 1)
  EXPECT_EQ(counts[1], 1u);      // 1.5        (v <= 2)
  EXPECT_EQ(counts[2], 2u);      // 3.0, 4.0   (v <= 4)
  EXPECT_EQ(counts[3], 2u);      // 7.9, 8.0   (v <= 8)
  EXPECT_EQ(counts[4], 2u);      // 9.0, 100.0 (overflow)
  EXPECT_EQ(h.count(), 9u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 3.0 + 4.0 + 7.9 + 8.0 + 9.0 +
                                100.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), ArgumentError);
  EXPECT_THROW(Histogram({2.0, 1.0}), ArgumentError);
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("h"));            // reuse existing layout
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), ArgumentError);
}

TEST(Metrics, NamesAreUniqueAcrossKinds) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), ArgumentError);
  EXPECT_THROW(reg.histogram("x"), ArgumentError);
}

TEST(Metrics, ExponentialBuckets) {
  const auto b = exponential_buckets(1.0, 2.0, 4);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 4), ArgumentError);
}

TEST(Metrics, JsonIsValidAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.count").add(3);
  reg.counter("a.count").add(1);
  reg.gauge("ratio").set(1.25);
  reg.histogram("lat", {1.0, 10.0}).observe(5.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonParser(json).valid()) << json;
  // Sorted keys: "a.count" must serialize before "z.count".
  EXPECT_LT(json.find("\"a.count\""), json.find("\"z.count\""));
  EXPECT_NE(json.find("\"ratio\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
}

TEST(Metrics, HistogramQuantileIsNearestRankOverBuckets) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // no observations yet
  for (const double v : {0.5, 1.5, 1.6, 3.0, 3.5, 7.0}) h.observe(v);
  // Bucketed observations, smallest-first, by bucket upper bound:
  // 1, 2, 2, 4, 4, 8.
  EXPECT_EQ(h.quantile(0.0), 1.0);   // rank clamps to the 1st
  EXPECT_EQ(h.quantile(0.5), 2.0);   // ceil(0.5 * 6) = 3rd
  EXPECT_EQ(h.quantile(0.95), 8.0);  // ceil(0.95 * 6) = 6th
  EXPECT_EQ(h.quantile(1.0), 8.0);
  h.observe(100.0);  // overflow bucket has no finite upper bound
  EXPECT_TRUE(std::isinf(h.quantile(1.0)));
  EXPECT_EQ(h.quantile(0.5), 4.0);  // ceil(0.5 * 7) = 4th of 1,2,2,4,4,8,inf
  EXPECT_THROW(h.quantile(-0.1), ArgumentError);
  EXPECT_THROW(h.quantile(1.1), ArgumentError);
}

TEST(Metrics, HistogramQuantilesMatchSerialReplayAfterConcurrentRecording) {
  // Many threads record the same deterministic multiset in different
  // interleavings; once recording quiesces, every percentile must equal
  // a serial replay's — quantiles depend on the multiset only, never on
  // recording order (the property the service latency report relies on).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  const auto value_of = [](int t, int i) {
    const auto x = derive_seed(static_cast<std::uint64_t>(t),
                               static_cast<std::uint64_t>(i));
    return 0.001 * static_cast<double>(1 + x % 3000);
  };

  MetricsRegistry reg;
  auto& h = reg.histogram("lat", exponential_buckets(0.001, 2.0, 16));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(value_of(t, i));
    });
  }
  for (auto& th : threads) th.join();

  Histogram serial(exponential_buckets(0.001, 2.0, 16));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) serial.observe(value_of(t, i));
  }
  ASSERT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_counts(), serial.bucket_counts());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), serial.quantile(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------
// Sweep executor
// ---------------------------------------------------------------------

TaskOutput bfs_cell(const SweepPoint& p, const WeightedGraph& g) {
  congest::Config cfg;
  cfg.bandwidth_bits = p.bandwidth_bits;
  cfg.seed = p.seed;
  const auto res = congest::build_bfs_tree(g, 0, cfg);
  TaskOutput out;
  record_stats(out, res.stats);
  return out;
}

TEST(Sweep, AggregatesInSpecOrder) {
  SweepSpec spec;
  spec.ns = {8, 16};
  spec.families = {"path", "star"};
  spec.seeds = 3;
  ThreadPool pool(2);
  const auto result = run_sweep(spec, bfs_cell, pool);
  ASSERT_EQ(result.cells.size(), 4u);
  EXPECT_EQ(result.tasks, 12u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.cells[0].n, 8u);
  EXPECT_EQ(result.cells[0].family, "path");
  EXPECT_EQ(result.cells[1].family, "star");
  EXPECT_EQ(result.cells[2].n, 16u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.runs, 3u);
    ASSERT_TRUE(cell.metrics.count("rounds"));
    EXPECT_GE(cell.metrics.at("rounds").min, 1.0);
    EXPECT_LE(cell.metrics.at("rounds").p50, cell.metrics.at("rounds").p95);
  }
}

TEST(Sweep, WorkerCountDoesNotChangeAggregatedJson) {
  SweepSpec spec;
  spec.ns = {12, 24};
  spec.families = {"ER", "tree"};
  spec.seeds = 16;
  spec.base_seed = 99;
  ThreadPool two(2);
  ThreadPool eight(8);
  const std::string a = to_json(run_sweep(spec, bfs_cell, two));
  const std::string b = to_json(run_sweep(spec, bfs_cell, eight));
  const std::string serial = to_json(run_sweep_serial(spec, bfs_cell));
  EXPECT_EQ(a, b);       // byte-identical at different worker counts
  EXPECT_EQ(a, serial);  // and identical to the single-thread reference
}

TEST(Sweep, JsonParsesBackAndEchoesSpec) {
  SweepSpec spec;
  spec.ns = {8};
  spec.families = {"path"};
  spec.seeds = 2;
  ThreadPool pool(2);
  const auto result = run_sweep(spec, bfs_cell, pool);
  for (const bool timing : {false, true}) {
    const std::string json = to_json(result, timing);
    EXPECT_TRUE(JsonParser(json).valid()) << json;
  }
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"families\":[\"path\"]"), std::string::npos);
  EXPECT_NE(json.find("\"seeds\":2"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"bits\""), std::string::npos);
  EXPECT_EQ(json.find("wall_seconds"), std::string::npos);
  EXPECT_NE(to_json(result, true).find("wall_seconds"), std::string::npos);
}

TEST(Sweep, FailedTasksAreCountedNotFatal) {
  SweepSpec spec;
  spec.ns = {8};
  spec.families = {"path"};
  spec.seeds = 4;
  ThreadPool pool(2);
  const auto result = run_sweep(
      spec,
      [](const SweepPoint& p, const WeightedGraph& g) {
        if (p.seed_index % 2 == 0) {
          throw ArgumentError("planned failure");
        }
        return bfs_cell(p, g);
      },
      pool);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].runs, 2u);
  EXPECT_EQ(result.cells[0].failures, 2u);
  EXPECT_EQ(result.failures, 2u);
  ASSERT_FALSE(result.cells[0].errors.empty());
  EXPECT_NE(result.cells[0].errors[0].find("planned failure"),
            std::string::npos);
}

TEST(Sweep, UnknownFamilyFailsEveryTask) {
  SweepSpec spec;
  spec.ns = {8};
  spec.families = {"no-such-family"};
  spec.seeds = 2;
  ThreadPool pool(2);
  const auto result = run_sweep(spec, bfs_cell, pool);
  EXPECT_EQ(result.failures, 2u);
}

TEST(Sweep, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sweep_roundtrip.json";
  write_file(path, "{\"ok\":true}");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"ok\":true}");
}

// ---------------------------------------------------------------------
// Simulator metrics hook
// ---------------------------------------------------------------------

TEST(SimulatorMetrics, HookTotalsMatchLedger) {
  const auto g = gen::grid(4, 4);
  MetricsRegistry reg;
  congest::Config cfg;
  attach_simulator_metrics(cfg, reg);
  const auto res = congest::build_bfs_tree(g, 0, cfg);
  EXPECT_EQ(reg.counter("sim.rounds").value(), res.stats.rounds);
  EXPECT_EQ(reg.counter("sim.messages").value(), res.stats.messages);
  EXPECT_EQ(reg.counter("sim.bits").value(), res.stats.bits);
  auto& h = reg.histogram("sim.round_messages");
  EXPECT_EQ(h.count(), res.stats.rounds);
  EXPECT_DOUBLE_EQ(h.sum(), double(res.stats.messages));
  EXPECT_TRUE(JsonParser(reg.to_json()).valid());
}

TEST(SimulatorMetrics, RoundsAreSequential) {
  const auto g = gen::path(6);
  congest::Config cfg;
  std::vector<std::uint64_t> rounds;
  cfg.on_round_metrics = [&](const congest::RoundMetrics& rm) {
    rounds.push_back(rm.round);
  };
  congest::build_bfs_tree(g, 0, cfg);
  ASSERT_FALSE(rounds.empty());
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i], i);
  }
}

}  // namespace
}  // namespace qc::runtime
