// Unit tests for src/util: RNG, math helpers, table rendering, errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/error.h"
#include "util/mathx.h"
#include "util/rng.h"
#include "util/table.h"

namespace qc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), ArgumentError);
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, SampleIndicesDensity) {
  Rng rng(23);
  const auto s = rng.sample_indices(10000, 0.1);
  EXPECT_NEAR(static_cast<double>(s.size()), 1000.0, 150.0);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(5);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child.next() == a.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Mathx, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1023), 9u);
  EXPECT_EQ(ilog2(1024), 10u);
}

TEST(Mathx, Clog2) {
  EXPECT_EQ(clog2(1), 0u);
  EXPECT_EQ(clog2(2), 1u);
  EXPECT_EQ(clog2(3), 2u);
  EXPECT_EQ(clog2(4), 2u);
  EXPECT_EQ(clog2(5), 3u);
  EXPECT_EQ(clog2(1024), 10u);
  EXPECT_EQ(clog2(1025), 11u);
}

TEST(Mathx, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

TEST(Mathx, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
  EXPECT_EQ(isqrt((1ULL << 40) - 1), (1ULL << 20) - 1);
}

TEST(Mathx, Csqrt) {
  EXPECT_EQ(csqrt(4), 2u);
  EXPECT_EQ(csqrt(5), 3u);
  EXPECT_EQ(csqrt(9), 3u);
}

TEST(Mathx, BitsFor) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
}

TEST(Mathx, DistAddSaturates) {
  EXPECT_EQ(dist_add(1, 2), 3u);
  EXPECT_EQ(dist_add(kInfDist, 5), kInfDist);
  EXPECT_EQ(dist_add(5, kInfDist), kInfDist);
  EXPECT_EQ(dist_add(kInfDist - 1, kInfDist - 1), kInfDist);
}

TEST(Mathx, FitPowerLawRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 1.7));
  }
  const auto [e, c] = fit_power_law(xs, ys);
  EXPECT_NEAR(e, 1.7, 1e-9);
  EXPECT_NEAR(c, 3.5, 1e-9);
}

TEST(Mathx, FitPowerLawRejectsBadInput) {
  EXPECT_THROW(fit_power_law({1.0}, {1.0}), ArgumentError);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {0.0, 1.0}), ArgumentError);
  EXPECT_THROW(fit_power_law({2.0, 2.0}, {1.0, 1.0}), ArgumentError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ArgumentError);
}

TEST(Errors, CheckMacroThrowsInvariant) {
  EXPECT_THROW(QC_CHECK(false, "boom"), InvariantError);
}

TEST(Errors, RequireMacroThrowsArgument) {
  EXPECT_THROW(QC_REQUIRE(false, "bad arg"), ArgumentError);
}

}  // namespace
}  // namespace qc
