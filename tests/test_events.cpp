// Tests for the Section 3.1 good events and Lemma 3.4 (core/events.h),
// plus the k-shortcut hop-diameter property (Theorem 3.10 of [21]) that
// Lemma 3.3's proof uses.
#include <gtest/gtest.h>

#include "core/events.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/reference.h"
#include "util/rng.h"

namespace qc::core {
namespace {

WeightedGraph events_graph(std::uint64_t seed, NodeId n) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 0.12, rng);
  return gen::randomize_weights(g, 8, rng);
}

class GoodEventsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GoodEventsTest, DiameterEventsHold) {
  const auto g = events_graph(GetParam(), 40);
  const auto rep = analyze_good_events(g, GetParam() * 13 + 1, false);
  // Good-Approximation and the Lemma 3.4 cap are the deterministic
  // halves at these sizes (ℓ clamps to ~n).
  EXPECT_TRUE(rep.approximation_ok);
  EXPECT_TRUE(rep.cap_ok);
  EXPECT_GE(rep.worst_ecc_ratio, 1.0 - 1e-9);
  EXPECT_LE(rep.worst_ecc_ratio,
            (1 + rep.params.epsilon()) * (1 + rep.params.epsilon()) + 1e-9);
  // The probabilistic halves, with the fixed seeds. Good-Scale is an
  // asymptotic w.h.p. event: at n = 40 with r ~ 3 a few empty sets are
  // expected (P(empty) = (1-r/n)^n ~ 4%), so we bound rather than
  // forbid them.
  EXPECT_LE(rep.empty_sets, 5u);
  EXPECT_GE(rep.good_sets, 1u);
  EXPECT_GE(rep.beta, 1u);
  // beta concentrates around r = mean set membership per node.
  EXPECT_LE(rep.beta, 6 * rep.params.r + 6);
}

TEST_P(GoodEventsTest, RadiusEventsHold) {
  const auto g = events_graph(GetParam() + 50, 36);
  const auto rep = analyze_good_events(g, GetParam() * 17 + 3, true);
  EXPECT_TRUE(rep.approximation_ok);
  EXPECT_TRUE(rep.cap_ok);  // for the radius: every ẽ >= R
  EXPECT_GE(rep.good_sets, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoodEventsTest,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(GoodEvents, MeanSetSizeTracksR) {
  const auto g = events_graph(9, 64);
  const auto rep = analyze_good_events(g, 5, false);
  EXPECT_NEAR(rep.mean_size, static_cast<double>(rep.params.r),
              0.5 * static_cast<double>(rep.params.r) + 1.0);
}

// ---------------------------------------------------------------------
// Theorem 3.10 of [21]: the k-shortcut overlay has hop diameter
// < 4|S|/k — the fact that justifies Algorithm 5's hop bound ℓ″.
// ---------------------------------------------------------------------

class ShortcutHopTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShortcutHopTest, ShortcutGraphHasBoundedHopDiameter) {
  Rng rng(GetParam() * 7 + 2);
  auto g = gen::erdos_renyi_connected(28, 0.15, rng);
  g = gen::randomize_weights(g, 7, rng);
  auto params = paths::Params::make(28, std::max<Dist>(1,
                                        unweighted_diameter(g)));
  // Use a larger set than Eq. (1) to make the bound non-trivial.
  std::vector<NodeId> set;
  for (NodeId v = 0; v < 28; ++v) {
    if (rng.chance(0.4)) set.push_back(v);
  }
  if (set.size() < 3) set = {0, 5, 9};
  const auto sk = paths::build_skeleton(g, params, set);
  const Dist h = paths::hop_diameter_matrix(sk.overlay_w2);
  EXPECT_LT(h, params.overlay_ell(sk.size()) + 1)
      << "|S|=" << sk.size() << " k=" << params.k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortcutHopTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(HopDiameterMatrix, SmallCases) {
  // Triangle with a heavy direct edge: the weight-shortest path between
  // the far pair uses 2 hops.
  std::vector<std::vector<Dist>> w{
      {kInfDist, 1, 10}, {1, kInfDist, 1}, {10, 1, kInfDist}};
  EXPECT_EQ(paths::hop_diameter_matrix(w), 2u);
  // Complete unit triangle: 1 hop.
  std::vector<std::vector<Dist>> u{
      {kInfDist, 1, 1}, {1, kInfDist, 1}, {1, 1, kInfDist}};
  EXPECT_EQ(paths::hop_diameter_matrix(u), 1u);
}

}  // namespace
}  // namespace qc::core
