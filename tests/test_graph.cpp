// Unit and property tests for src/graph: the graph type, generators,
// centralized reference algorithms, and the Lemma 4.3 contraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <utility>

#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/slot_index.h"
#include "util/rng.h"

namespace qc {
namespace {

TEST(WeightedGraph, AddAndQueryEdges) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_weight(0, 1), 5u);
  EXPECT_EQ(g.edge_weight(2, 1), 1u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  g.validate();
}

TEST(WeightedGraph, RejectsBadEdges) {
  WeightedGraph g(3);
  EXPECT_THROW(g.add_edge(0, 0), ArgumentError);       // self loop
  EXPECT_THROW(g.add_edge(0, 3), ArgumentError);       // out of range
  EXPECT_THROW(g.add_edge(0, 1, 0), ArgumentError);    // zero weight
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), ArgumentError);       // parallel
}

TEST(WeightedGraph, SetEdgeWeight) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 4);
  g.set_edge_weight(1, 0, 9);
  EXPECT_EQ(g.edge_weight(0, 1), 9u);
  EXPECT_EQ(g.edges()[0].weight, 9u);
  EXPECT_THROW(g.set_edge_weight(0, 2, 1), ArgumentError);
  g.validate();
}

TEST(WeightedGraph, UnweightedCopyAndReweight) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 3);
  const auto u = g.unweighted_copy();
  EXPECT_EQ(u.edge_weight(0, 1), 1u);
  const auto d = g.reweighted([](Weight w) { return 2 * w; });
  EXPECT_EQ(d.edge_weight(0, 1), 14u);
  EXPECT_EQ(g.max_weight(), 7u);
}

TEST(WeightedGraph, Connectivity) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(WeightedGraph(1).is_connected());
}

TEST(WeightedGraph, DotExportMentionsWeights) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 5);
  const std::string dot = to_dot(g, "T");
  EXPECT_NE(dot.find("graph T"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("[label=5]"), std::string::npos);
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(Generators, PathShape) {
  const auto g = gen::path(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(unweighted_diameter(g), 4u);
}

TEST(Generators, CycleShape) {
  const auto g = gen::cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(unweighted_diameter(g), 3u);
}

TEST(Generators, StarShape) {
  const auto g = gen::star(9);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(unweighted_diameter(g), 2u);
}

TEST(Generators, CompleteShape) {
  const auto g = gen::complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(unweighted_diameter(g), 1u);
}

TEST(Generators, BalancedTreeShape) {
  const auto g = gen::balanced_binary_tree(15);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(unweighted_diameter(g), 6u);  // leaf-to-leaf via root
}

TEST(Generators, GridShape) {
  const auto g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3u + 2u * 4u);
  EXPECT_EQ(unweighted_diameter(g), 5u);
}

TEST(Generators, PathOfCliques) {
  const auto g = gen::path_of_cliques(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(g.is_connected());
  // Diameter is about one hop per clique plus bridges.
  EXPECT_GE(unweighted_diameter(g), 4u);
  EXPECT_LE(unweighted_diameter(g), 8u);
}

class ErdosRenyiTest : public ::testing::TestWithParam<double> {};

TEST_P(ErdosRenyiTest, AlwaysConnected) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::erdos_renyi_connected(40, GetParam(), rng);
    EXPECT_TRUE(g.is_connected());
    g.validate();
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ErdosRenyiTest,
                         ::testing::Values(0.0, 0.02, 0.1, 0.3, 0.9));

TEST(Generators, RandomTreeIsTree) {
  Rng rng(7);
  for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{17}, NodeId{60}}) {
    const auto g = gen::random_tree(n, rng);
    EXPECT_EQ(g.edge_count(), std::size_t{n} - 1);
    EXPECT_TRUE(g.is_connected());
    g.validate();
  }
}

TEST(Generators, BarbellShape) {
  const auto g = gen::barbell(5, 3);
  EXPECT_EQ(g.node_count(), 13u);
  EXPECT_TRUE(g.is_connected());
  // D = 1 (in-clique) + 1 + bridge + 1 + 1 = bridge + 4? Endpoints of
  // opposite cliques: 1 hop to the bridge attachment, bridge+1 hops
  // across, 1 hop in.
  EXPECT_EQ(unweighted_diameter(g), 3u + 3u);
  const auto g0 = gen::barbell(4, 0);
  EXPECT_TRUE(g0.is_connected());
  EXPECT_EQ(g0.node_count(), 8u);
}

TEST(Generators, HypercubeShape) {
  const auto g = gen::hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n * d / 2
  EXPECT_EQ(unweighted_diameter(g), 4u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularNearRegularAndConnected) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::random_regular(40, 4, rng);
    EXPECT_TRUE(g.is_connected());
    g.validate();
    std::size_t total_degree = 0;
    for (NodeId v = 0; v < 40; ++v) total_degree += g.degree(v);
    // Approximately 4-regular (loops/duplicates dropped, repair added).
    EXPECT_GE(total_degree, 40u * 3);
    EXPECT_LE(total_degree, 40u * 5);
    // Expander-like: low diameter.
    EXPECT_LE(unweighted_diameter(g), 8u);
  }
}

TEST(Generators, PlantedHeavyPairStretchesTheMetric) {
  Rng rng(17);
  const auto plain = gen::randomize_weights(
      gen::erdos_renyi_connected(30, 0.1, rng), 5, rng);
  Rng rng2(17);
  const auto planted = gen::planted_heavy_pair(30, 5, 500, rng2);
  // Node n-1 is far from everyone in the planted graph.
  const auto d = dijkstra(planted, 0);
  EXPECT_GT(d[29], 500u);
  EXPECT_GE(weighted_diameter(planted), 500u);
  EXPECT_LT(weighted_diameter(plain), 200u);
}

TEST(Generators, RandomWeightsStayInRange) {
  Rng rng(5);
  const auto g = gen::randomize_weights(gen::grid(4, 4), 10, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 10u);
  }
}

// ---------------------------------------------------------------------
// Reference algorithms
// ---------------------------------------------------------------------

TEST(Algorithms, BfsOnPath) {
  const auto g = gen::path(6);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Algorithms, BfsUnreachableIsInf) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(bfs_distances(g, 0)[2], kInfDist);
}

TEST(Algorithms, DijkstraMatchesBfsOnUnitWeights) {
  Rng rng(3);
  const auto g = gen::erdos_renyi_connected(30, 0.1, rng);
  for (NodeId s = 0; s < 30; s += 7) {
    EXPECT_EQ(dijkstra(g, s), bfs_distances(g, s));
  }
}

TEST(Algorithms, DijkstraWeightedPath) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 10);
  g.add_edge(2, 3, 1);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], 5u);  // through node 1, not the direct 10-edge
  EXPECT_EQ(d[3], 6u);
}

TEST(Algorithms, DijkstraWithHopsPrefersFewerEdgesAmongShortest) {
  // Two shortest paths of weight 4: 0-1-2-3 (3 hops) and 0-4-3 (2 hops).
  WeightedGraph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 4, 2);
  g.add_edge(4, 3, 2);
  const auto dh = dijkstra_with_hops(g, 0);
  EXPECT_EQ(dh.dist[3], 4u);
  EXPECT_EQ(dh.hops[3], 2u);
}

TEST(Algorithms, BoundedHopDistancesConverge) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 5);
  g.add_edge(2, 3, 1);
  EXPECT_EQ(bounded_hop_distances(g, 0, 1)[2], 5u);   // direct edge only
  EXPECT_EQ(bounded_hop_distances(g, 0, 2)[2], 2u);   // two-hop path
  EXPECT_EQ(bounded_hop_distances(g, 0, 1)[3], kInfDist);
  EXPECT_EQ(bounded_hop_distances(g, 0, 8)[3], 3u);
}

TEST(Algorithms, BoundedHopMonotoneInEll) {
  Rng rng(21);
  auto g = gen::erdos_renyi_connected(24, 0.12, rng);
  g = gen::randomize_weights(g, 9, rng);
  const auto exact = dijkstra(g, 0);
  std::vector<Dist> prev(24, kInfDist);
  for (std::uint64_t ell = 1; ell <= 24; ++ell) {
    const auto cur = bounded_hop_distances(g, 0, ell);
    for (NodeId v = 0; v < 24; ++v) {
      EXPECT_LE(cur[v], prev[v]);
      EXPECT_GE(cur[v], exact[v]);
    }
    prev = cur;
  }
  EXPECT_EQ(prev, exact);  // n-1 hops suffice
}

TEST(Algorithms, EccentricityDiameterRadiusConsistency) {
  Rng rng(31);
  auto g = gen::erdos_renyi_connected(25, 0.15, rng);
  g = gen::randomize_weights(g, 7, rng);
  const auto ecc = eccentricities(g);
  const auto apsp = all_pairs_distances(g);
  for (NodeId u = 0; u < 25; ++u) {
    const Dist row_max = *std::max_element(apsp[u].begin(), apsp[u].end());
    EXPECT_EQ(ecc[u], row_max);
  }
  EXPECT_EQ(weighted_diameter(g), *std::max_element(ecc.begin(), ecc.end()));
  EXPECT_EQ(weighted_radius(g), *std::min_element(ecc.begin(), ecc.end()));
  EXPECT_LE(weighted_radius(g), weighted_diameter(g));
  EXPECT_LE(weighted_diameter(g), 2 * weighted_radius(g));
}

TEST(Algorithms, HopDiameterBounds) {
  const auto g = gen::path(7);
  EXPECT_EQ(hop_diameter(g), 6u);
  const auto k = gen::complete(5);
  EXPECT_EQ(hop_diameter(k), 1u);
}

TEST(Algorithms, HopDiameterWeightedForcesLongPaths) {
  // Heavy direct edge: shortest paths go the long way around.
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 100);
  EXPECT_EQ(hop_diameter(g), 3u);
}

// ---------------------------------------------------------------------
// Contraction (Lemma 4.3)
// ---------------------------------------------------------------------

TEST(Contraction, MergesUnitComponents) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 4, 1);
  const auto c = contract_unit_edges(g);
  EXPECT_EQ(c.graph.node_count(), 2u);
  EXPECT_EQ(c.node_map[0], c.node_map[1]);
  EXPECT_EQ(c.node_map[1], c.node_map[2]);
  EXPECT_EQ(c.node_map[3], c.node_map[4]);
  EXPECT_NE(c.node_map[0], c.node_map[3]);
  EXPECT_EQ(c.graph.edge_weight(c.node_map[0], c.node_map[3]), 4u);
}

TEST(Contraction, ParallelEdgesKeepMinimum) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);  // merges 0,1
  g.add_edge(2, 3, 1);  // merges 2,3
  g.add_edge(0, 2, 9);
  g.add_edge(1, 3, 5);  // parallel after contraction; keep 5
  const auto c = contract_unit_edges(g);
  EXPECT_EQ(c.graph.node_count(), 2u);
  EXPECT_EQ(c.graph.edge_count(), 1u);
  EXPECT_EQ(c.graph.edges()[0].weight, 5u);
}

// Lemma 4.3 property: D_{G'} <= D_G <= D_{G'} + n, same for radius.
class ContractionLemmaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContractionLemmaTest, SandwichBounds) {
  Rng rng(GetParam());
  auto g = gen::erdos_renyi_connected(20, 0.15, rng);
  // Mix unit and heavy weights.
  g = g.reweighted([&](Weight) {
    return rng.chance(0.5) ? Weight{1} : Weight{50 + rng.below(50)};
  });
  const auto c = contract_unit_edges(g);
  if (c.graph.node_count() < 2) return;  // fully contracted: trivial
  const Dist dg = weighted_diameter(g);
  const Dist dc = weighted_diameter(c.graph);
  EXPECT_LE(dc, dg);
  EXPECT_LE(dg, dc + g.node_count());
  const Dist rg = weighted_radius(g);
  const Dist rc = weighted_radius(c.graph);
  EXPECT_LE(rc, rg);
  EXPECT_LE(rg, rc + g.node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractionLemmaTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// CSR adjacency layer (graph/csr.h) and the workspace kernels
// ---------------------------------------------------------------------

// Textbook Dijkstra, independent of the workspace engines, used as the
// oracle for the bucket-vs-heap equivalence properties below.
std::vector<Dist> oracle_dijkstra(const WeightedGraph& g, NodeId s) {
  std::vector<Dist> dist(g.node_count(), kInfDist);
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const HalfEdge& h : g.neighbors(u)) {
      const Dist nd = dist_add(d, h.weight);
      if (nd < dist[h.to]) {
        dist[h.to] = nd;
        pq.emplace(nd, h.to);
      }
    }
  }
  return dist;
}

TEST(Csr, MirrorsAdjacencyInOrder) {
  Rng rng(7);
  const auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(40, 0.2, rng), 30, rng);
  const CsrGraph csr(g);
  ASSERT_EQ(csr.node_count(), g.node_count());
  EXPECT_EQ(csr.edge_count(), g.edge_count());
  Weight mx = 1;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = csr.neighbors(u);
    const auto& ref = g.neighbors(u);
    ASSERT_EQ(row.size(), ref.size());
    ASSERT_EQ(csr.degree(u), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(row[i].to, ref[i].to);
      EXPECT_EQ(row[i].weight, ref[i].weight);
      mx = std::max(mx, ref[i].weight);
    }
  }
  EXPECT_EQ(csr.max_weight(), mx);
}

TEST(Csr, CachedViewTracksMutation) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(g.csr().edge_count(), 2u);
  g.add_edge(2, 3, 5);  // must invalidate the cached view
  EXPECT_EQ(g.csr().edge_count(), 3u);
  EXPECT_EQ(dijkstra(g.csr(), 0)[3], 11u);
  g.set_edge_weight(2, 3, 1);  // likewise
  EXPECT_EQ(dijkstra(g.csr(), 0)[3], 7u);
  // Copies drop the cache but not the data; moves carry it.
  WeightedGraph h = g;
  EXPECT_EQ(h.csr().edge_count(), 3u);
}

TEST(Csr, AssignReweightedMatchesGraphReweighted) {
  Rng rng(11);
  const auto g = gen::randomize_weights(
      gen::erdos_renyi_connected(30, 0.2, rng), 40, rng);
  const auto f = [](Weight w) { return Weight{2} * w + 1; };
  CsrGraph scaled;
  scaled.assign_reweighted(g.csr(), f);
  const auto expect = g.reweighted(f);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    EXPECT_EQ(dijkstra(scaled, s), oracle_dijkstra(expect, s));
  }
  // Re-assigning from the same pristine base must not compound.
  scaled.assign_reweighted(g.csr(), f);
  EXPECT_EQ(dijkstra(scaled, 0), oracle_dijkstra(expect, 0));
}

// Invariants every shard cut must satisfy: a partition of [0, n) into
// k = min(shards, n) >= 1 non-empty contiguous ranges.
void check_shards(const CsrGraph& csr, const std::vector<NodeId>& b,
                  unsigned shards) {
  const NodeId n = csr.node_count();
  const auto k = static_cast<std::size_t>(
      std::min<NodeId>(std::max(1u, shards), std::max<NodeId>(n, 1)));
  ASSERT_EQ(b.size(), k + 1);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), n);
  for (std::size_t s = 0; s + 1 < b.size(); ++s) EXPECT_LT(b[s], b[s + 1]);
}

TEST(Csr, BalancedNodeShardsPartitionAndBalance) {
  Rng rng(23);
  const auto g = gen::erdos_renyi_connected(200, 0.05, rng);
  const CsrGraph& csr = g.csr();
  for (const unsigned shards : {1u, 2u, 3u, 8u}) {
    const auto b = csr.balanced_node_shards(shards);
    check_shards(csr, b, shards);
    // No shard carries more than twice the average mass (deg + 1) — the
    // prefix-sum cut can overshoot by at most one node's mass, and no
    // ER(200, 0.05) node is anywhere near a full shard's worth.
    std::uint64_t total = 0;
    for (NodeId v = 0; v < csr.node_count(); ++v) total += csr.degree(v) + 1;
    for (std::size_t s = 0; s + 1 < b.size(); ++s) {
      std::uint64_t mass = 0;
      for (NodeId v = b[s]; v < b[s + 1]; ++v) mass += csr.degree(v) + 1;
      EXPECT_LE(mass, 2 * total / shards + total % shards)
          << "shard " << s << " of " << shards;
    }
  }
}

TEST(Csr, BalancedNodeShardsAbsorbsHubWithoutUnbalancing) {
  // A star's hub alone is a third of all mass. A node-count split would
  // give shard 0 the hub plus half the leaves (~2/3 of the mass); the
  // mass cut instead stops within one leaf of an even split.
  const auto g = gen::star(64);
  const CsrGraph& csr = g.csr();
  const auto b = csr.balanced_node_shards(2);
  ASSERT_EQ(b.size(), 3u);
  const auto mass = [&](NodeId lo, NodeId hi) {
    std::uint64_t m = 0;
    for (NodeId v = lo; v < hi; ++v) m += csr.degree(v) + 1;
    return m;
  };
  const std::uint64_t m0 = mass(b[0], b[1]);
  const std::uint64_t m1 = mass(b[1], b[2]);
  EXPECT_LE(m0 > m1 ? m0 - m1 : m1 - m0, 4u);
}

TEST(Csr, BalancedNodeShardsClampsToNodeCount) {
  const auto g = gen::path(3);
  const auto b = g.csr().balanced_node_shards(8);
  EXPECT_EQ(b, (std::vector<NodeId>{0, 1, 2, 3}));  // one node per shard
  const auto one = g.csr().balanced_node_shards(0);
  EXPECT_EQ(one, (std::vector<NodeId>{0, 3}));  // 0 means "one shard"
}

TEST(WeightedGraph, FromEdgesMatchesAddEdge) {
  std::vector<Edge> edges{{0, 1, 4}, {1, 3, 2}, {0, 2, 7}, {2, 3, 1}};
  const auto g = WeightedGraph::from_edges(5, edges);
  WeightedGraph ref(5);
  for (const Edge& e : edges) ref.add_edge(e.u, e.v, e.weight);
  ASSERT_EQ(g.node_count(), ref.node_count());
  ASSERT_EQ(g.edge_count(), ref.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto& a = g.neighbors(u);
    const auto& b = ref.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
  g.validate();
  EXPECT_THROW(WeightedGraph::from_edges(2, {{0, 1, 0}}), ArgumentError);
  EXPECT_THROW(WeightedGraph::from_edges(2, {{1, 0, 1}}), ArgumentError);
  EXPECT_THROW(WeightedGraph::from_edges(2, {{0, 2, 1}}), ArgumentError);
}

// Randomized equivalence: every CSR kernel agrees with its WeightedGraph
// shim and with the oracle, on one workspace reused across all sources
// and both weight regimes (small weights take the bucket engine, large
// weights the binary heap — the labels must be identical either way).
class CsrEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrEquivalenceTest, KernelsMatchAcrossEnginesAndReuse) {
  Rng rng(GetParam());
  const NodeId n = 12 + static_cast<NodeId>(rng.below(40));
  auto g = gen::erdos_renyi_connected(n, 0.05 + rng.uniform() * 0.25, rng);
  // Odd seeds get gadget-scale weights to force the heap engine; even
  // seeds stay within the bucket window.
  const Weight max_w =
      (GetParam() % 2 != 0) ? Weight{1} << 20 : Weight{60};
  g = gen::randomize_weights(g, max_w, rng);
  const CsrGraph& csr = g.csr();

  DijkstraWorkspace ws;  // one workspace, reused for every run below
  std::vector<Dist> out;
  std::vector<Dist> hops;
  for (NodeId s = 0; s < n; ++s) {
    const auto oracle = oracle_dijkstra(g, s);
    ws.dijkstra(csr, s, out);
    EXPECT_EQ(out, oracle);
    EXPECT_EQ(dijkstra(g, s), oracle);

    ws.bfs(csr, s, out);
    EXPECT_EQ(out, bfs_distances(g, s));

    ws.dijkstra_with_hops(csr, s, out, hops);
    const auto dh = dijkstra_with_hops(g, s);
    EXPECT_EQ(out, dh.dist);
    EXPECT_EQ(hops, dh.hops);
    EXPECT_EQ(out, oracle);  // lexicographic run keeps exact distances

    const std::uint64_t ell = 1 + rng.below(n);
    ws.bounded_hop(csr, s, ell, out);
    EXPECT_EQ(out, bounded_hop_distances(g, s, ell));
    ws.bounded_hop(csr, s, n, out);
    EXPECT_EQ(out, oracle);  // ell >= n-1 hops recovers true distances
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(EdgeSlotIndex, MatchesRowScanOnRandomGraph) {
  Rng rng(7);
  const auto g = gen::erdos_renyi_connected(64, 0.12, rng);
  const CsrGraph& csr = g.csr();
  const EdgeSlotIndex& idx = g.slot_index();

  EXPECT_EQ(idx.directed_edge_count(), 2 * g.edge_count());
  std::vector<char> seen(idx.directed_edge_count(), 0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = csr.neighbors(u);
    for (std::uint32_t s = 0; s < row.size(); ++s) {
      EXPECT_EQ(idx.slot(u, row[s].to), s);
      const std::size_t e = idx.edge_index(u, s);
      ASSERT_LT(e, seen.size());
      EXPECT_EQ(seen[e], 0) << "edge_index must be a bijection";
      seen[e] = 1;
    }
    // Non-neighbours (including u itself) must miss.
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || g.has_edge(u, v)) continue;
      EXPECT_EQ(idx.slot(u, v), EdgeSlotIndex::kNoSlot);
      break;  // one miss per row keeps the test O(n + m)
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](char c) { return c == 1; }));
}

TEST(EdgeSlotIndex, CachedAndInvalidatedWithCsr) {
  auto g = gen::path(4);
  const EdgeSlotIndex* first = &g.slot_index();
  EXPECT_EQ(first, &g.slot_index()) << "repeated calls reuse the cache";
  EXPECT_EQ(g.slot_index().slot(0, 2), EdgeSlotIndex::kNoSlot);

  g.add_edge(0, 2);  // mutation invalidates the cached index
  const EdgeSlotIndex& rebuilt = g.slot_index();
  const std::uint32_t s = rebuilt.slot(0, 2);
  ASSERT_NE(s, EdgeSlotIndex::kNoSlot);
  EXPECT_EQ(g.csr().neighbors(0)[s].to, 2u);
}

TEST(EdgeSlotIndex, SingleNodeGraphHasNoEdges) {
  WeightedGraph g(1);
  EXPECT_EQ(g.slot_index().directed_edge_count(), 0u);
  EXPECT_EQ(g.slot_index().slot(0, 0), EdgeSlotIndex::kNoSlot);
}

// ---------------------------------------------------------------------
// Connectivity verdict dirty bit: mutations that cannot change the
// answer keep the cache; only a possibly-bridging edge drops it.
// ---------------------------------------------------------------------

TEST(WeightedGraph, ConnectivityVerdictSurvivesSafeMutations) {
  Rng rng(5);
  auto g = gen::erdos_renyi_connected(20, 0.2, rng);
  EXPECT_FALSE(g.connectivity_cached());
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.connectivity_cached());

  // Weight changes never touch topology: verdict retained.
  g.set_edge_weight(g.edges().front().u, g.edges().front().v, 99);
  EXPECT_TRUE(g.connectivity_cached());
  EXPECT_TRUE(g.is_connected());

  // An edge added to a connected graph keeps it connected: retained.
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!g.has_edge(u, (u + 2) % g.node_count()) &&
        u != (u + 2) % g.node_count()) {
      g.add_edge(u, (u + 2) % g.node_count(), 3);
      break;
    }
  }
  EXPECT_TRUE(g.connectivity_cached());
  EXPECT_TRUE(g.is_connected());
}

TEST(WeightedGraph, BridgingEdgeInvalidatesDisconnectedVerdict) {
  // The stale-cache hazard the dirty bit exists for: cache says
  // "disconnected", then an edge bridges the components — the stale
  // verdict must not be served.
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(g.connectivity_cached());
  g.add_edge(1, 2, 7);  // bridges {0,1} and {2,3}
  EXPECT_FALSE(g.connectivity_cached());  // downgraded, not reused
  EXPECT_TRUE(g.is_connected());

  // A growth edge that still leaves components re-resolves to
  // "disconnected" and re-caches.
  WeightedGraph h(5);
  h.add_edge(0, 1, 1);
  h.add_edge(2, 3, 1);
  EXPECT_FALSE(h.is_connected());
  h.add_edge(3, 4, 1);  // merges {2,3} and {4}; {0,1} still apart
  EXPECT_FALSE(h.connectivity_cached());
  EXPECT_FALSE(h.is_connected());
  EXPECT_TRUE(h.connectivity_cached());
}

TEST(WeightedGraph, CopyAndAssignResetConnectivityVerdict) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  EXPECT_TRUE(g.is_connected());

  WeightedGraph copy = g;  // copies start with cold caches
  EXPECT_FALSE(copy.connectivity_cached());
  EXPECT_TRUE(copy.is_connected());

  WeightedGraph target(2);  // two isolated nodes: cache "disconnected"
  EXPECT_FALSE(target.is_connected());
  EXPECT_TRUE(target.connectivity_cached());
  target = g;  // assignment replaces the data: verdict must reset
  EXPECT_FALSE(target.connectivity_cached());
  EXPECT_TRUE(target.is_connected());

  WeightedGraph moved = std::move(copy);  // moves carry the verdict
  EXPECT_TRUE(moved.connectivity_cached());
  EXPECT_TRUE(moved.is_connected());
}

}  // namespace
}  // namespace qc
