// Unit and property tests for src/graph: the graph type, generators,
// centralized reference algorithms, and the Lemma 4.3 contraction.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace qc {
namespace {

TEST(WeightedGraph, AddAndQueryEdges) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_weight(0, 1), 5u);
  EXPECT_EQ(g.edge_weight(2, 1), 1u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  g.validate();
}

TEST(WeightedGraph, RejectsBadEdges) {
  WeightedGraph g(3);
  EXPECT_THROW(g.add_edge(0, 0), ArgumentError);       // self loop
  EXPECT_THROW(g.add_edge(0, 3), ArgumentError);       // out of range
  EXPECT_THROW(g.add_edge(0, 1, 0), ArgumentError);    // zero weight
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), ArgumentError);       // parallel
}

TEST(WeightedGraph, SetEdgeWeight) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 4);
  g.set_edge_weight(1, 0, 9);
  EXPECT_EQ(g.edge_weight(0, 1), 9u);
  EXPECT_EQ(g.edges()[0].weight, 9u);
  EXPECT_THROW(g.set_edge_weight(0, 2, 1), ArgumentError);
  g.validate();
}

TEST(WeightedGraph, UnweightedCopyAndReweight) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 3);
  const auto u = g.unweighted_copy();
  EXPECT_EQ(u.edge_weight(0, 1), 1u);
  const auto d = g.reweighted([](Weight w) { return 2 * w; });
  EXPECT_EQ(d.edge_weight(0, 1), 14u);
  EXPECT_EQ(g.max_weight(), 7u);
}

TEST(WeightedGraph, Connectivity) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(WeightedGraph(1).is_connected());
}

TEST(WeightedGraph, DotExportMentionsWeights) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 5);
  const std::string dot = to_dot(g, "T");
  EXPECT_NE(dot.find("graph T"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("[label=5]"), std::string::npos);
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(Generators, PathShape) {
  const auto g = gen::path(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(unweighted_diameter(g), 4u);
}

TEST(Generators, CycleShape) {
  const auto g = gen::cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(unweighted_diameter(g), 3u);
}

TEST(Generators, StarShape) {
  const auto g = gen::star(9);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(unweighted_diameter(g), 2u);
}

TEST(Generators, CompleteShape) {
  const auto g = gen::complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_EQ(unweighted_diameter(g), 1u);
}

TEST(Generators, BalancedTreeShape) {
  const auto g = gen::balanced_binary_tree(15);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(unweighted_diameter(g), 6u);  // leaf-to-leaf via root
}

TEST(Generators, GridShape) {
  const auto g = gen::grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3u + 2u * 4u);
  EXPECT_EQ(unweighted_diameter(g), 5u);
}

TEST(Generators, PathOfCliques) {
  const auto g = gen::path_of_cliques(4, 5);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_TRUE(g.is_connected());
  // Diameter is about one hop per clique plus bridges.
  EXPECT_GE(unweighted_diameter(g), 4u);
  EXPECT_LE(unweighted_diameter(g), 8u);
}

class ErdosRenyiTest : public ::testing::TestWithParam<double> {};

TEST_P(ErdosRenyiTest, AlwaysConnected) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::erdos_renyi_connected(40, GetParam(), rng);
    EXPECT_TRUE(g.is_connected());
    g.validate();
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, ErdosRenyiTest,
                         ::testing::Values(0.0, 0.02, 0.1, 0.3, 0.9));

TEST(Generators, RandomTreeIsTree) {
  Rng rng(7);
  for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{17}, NodeId{60}}) {
    const auto g = gen::random_tree(n, rng);
    EXPECT_EQ(g.edge_count(), std::size_t{n} - 1);
    EXPECT_TRUE(g.is_connected());
    g.validate();
  }
}

TEST(Generators, BarbellShape) {
  const auto g = gen::barbell(5, 3);
  EXPECT_EQ(g.node_count(), 13u);
  EXPECT_TRUE(g.is_connected());
  // D = 1 (in-clique) + 1 + bridge + 1 + 1 = bridge + 4? Endpoints of
  // opposite cliques: 1 hop to the bridge attachment, bridge+1 hops
  // across, 1 hop in.
  EXPECT_EQ(unweighted_diameter(g), 3u + 3u);
  const auto g0 = gen::barbell(4, 0);
  EXPECT_TRUE(g0.is_connected());
  EXPECT_EQ(g0.node_count(), 8u);
}

TEST(Generators, HypercubeShape) {
  const auto g = gen::hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n * d / 2
  EXPECT_EQ(unweighted_diameter(g), 4u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularNearRegularAndConnected) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen::random_regular(40, 4, rng);
    EXPECT_TRUE(g.is_connected());
    g.validate();
    std::size_t total_degree = 0;
    for (NodeId v = 0; v < 40; ++v) total_degree += g.degree(v);
    // Approximately 4-regular (loops/duplicates dropped, repair added).
    EXPECT_GE(total_degree, 40u * 3);
    EXPECT_LE(total_degree, 40u * 5);
    // Expander-like: low diameter.
    EXPECT_LE(unweighted_diameter(g), 8u);
  }
}

TEST(Generators, PlantedHeavyPairStretchesTheMetric) {
  Rng rng(17);
  const auto plain = gen::randomize_weights(
      gen::erdos_renyi_connected(30, 0.1, rng), 5, rng);
  Rng rng2(17);
  const auto planted = gen::planted_heavy_pair(30, 5, 500, rng2);
  // Node n-1 is far from everyone in the planted graph.
  const auto d = dijkstra(planted, 0);
  EXPECT_GT(d[29], 500u);
  EXPECT_GE(weighted_diameter(planted), 500u);
  EXPECT_LT(weighted_diameter(plain), 200u);
}

TEST(Generators, RandomWeightsStayInRange) {
  Rng rng(5);
  const auto g = gen::randomize_weights(gen::grid(4, 4), 10, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 10u);
  }
}

// ---------------------------------------------------------------------
// Reference algorithms
// ---------------------------------------------------------------------

TEST(Algorithms, BfsOnPath) {
  const auto g = gen::path(6);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(Algorithms, BfsUnreachableIsInf) {
  WeightedGraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(bfs_distances(g, 0)[2], kInfDist);
}

TEST(Algorithms, DijkstraMatchesBfsOnUnitWeights) {
  Rng rng(3);
  const auto g = gen::erdos_renyi_connected(30, 0.1, rng);
  for (NodeId s = 0; s < 30; s += 7) {
    EXPECT_EQ(dijkstra(g, s), bfs_distances(g, s));
  }
}

TEST(Algorithms, DijkstraWeightedPath) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(0, 2, 10);
  g.add_edge(2, 3, 1);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], 5u);  // through node 1, not the direct 10-edge
  EXPECT_EQ(d[3], 6u);
}

TEST(Algorithms, DijkstraWithHopsPrefersFewerEdgesAmongShortest) {
  // Two shortest paths of weight 4: 0-1-2-3 (3 hops) and 0-4-3 (2 hops).
  WeightedGraph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 4, 2);
  g.add_edge(4, 3, 2);
  const auto dh = dijkstra_with_hops(g, 0);
  EXPECT_EQ(dh.dist[3], 4u);
  EXPECT_EQ(dh.hops[3], 2u);
}

TEST(Algorithms, BoundedHopDistancesConverge) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 5);
  g.add_edge(2, 3, 1);
  EXPECT_EQ(bounded_hop_distances(g, 0, 1)[2], 5u);   // direct edge only
  EXPECT_EQ(bounded_hop_distances(g, 0, 2)[2], 2u);   // two-hop path
  EXPECT_EQ(bounded_hop_distances(g, 0, 1)[3], kInfDist);
  EXPECT_EQ(bounded_hop_distances(g, 0, 8)[3], 3u);
}

TEST(Algorithms, BoundedHopMonotoneInEll) {
  Rng rng(21);
  auto g = gen::erdos_renyi_connected(24, 0.12, rng);
  g = gen::randomize_weights(g, 9, rng);
  const auto exact = dijkstra(g, 0);
  std::vector<Dist> prev(24, kInfDist);
  for (std::uint64_t ell = 1; ell <= 24; ++ell) {
    const auto cur = bounded_hop_distances(g, 0, ell);
    for (NodeId v = 0; v < 24; ++v) {
      EXPECT_LE(cur[v], prev[v]);
      EXPECT_GE(cur[v], exact[v]);
    }
    prev = cur;
  }
  EXPECT_EQ(prev, exact);  // n-1 hops suffice
}

TEST(Algorithms, EccentricityDiameterRadiusConsistency) {
  Rng rng(31);
  auto g = gen::erdos_renyi_connected(25, 0.15, rng);
  g = gen::randomize_weights(g, 7, rng);
  const auto ecc = eccentricities(g);
  const auto apsp = all_pairs_distances(g);
  for (NodeId u = 0; u < 25; ++u) {
    const Dist row_max = *std::max_element(apsp[u].begin(), apsp[u].end());
    EXPECT_EQ(ecc[u], row_max);
  }
  EXPECT_EQ(weighted_diameter(g), *std::max_element(ecc.begin(), ecc.end()));
  EXPECT_EQ(weighted_radius(g), *std::min_element(ecc.begin(), ecc.end()));
  EXPECT_LE(weighted_radius(g), weighted_diameter(g));
  EXPECT_LE(weighted_diameter(g), 2 * weighted_radius(g));
}

TEST(Algorithms, HopDiameterBounds) {
  const auto g = gen::path(7);
  EXPECT_EQ(hop_diameter(g), 6u);
  const auto k = gen::complete(5);
  EXPECT_EQ(hop_diameter(k), 1u);
}

TEST(Algorithms, HopDiameterWeightedForcesLongPaths) {
  // Heavy direct edge: shortest paths go the long way around.
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 100);
  EXPECT_EQ(hop_diameter(g), 3u);
}

// ---------------------------------------------------------------------
// Contraction (Lemma 4.3)
// ---------------------------------------------------------------------

TEST(Contraction, MergesUnitComponents) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 4, 1);
  const auto c = contract_unit_edges(g);
  EXPECT_EQ(c.graph.node_count(), 2u);
  EXPECT_EQ(c.node_map[0], c.node_map[1]);
  EXPECT_EQ(c.node_map[1], c.node_map[2]);
  EXPECT_EQ(c.node_map[3], c.node_map[4]);
  EXPECT_NE(c.node_map[0], c.node_map[3]);
  EXPECT_EQ(c.graph.edge_weight(c.node_map[0], c.node_map[3]), 4u);
}

TEST(Contraction, ParallelEdgesKeepMinimum) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);  // merges 0,1
  g.add_edge(2, 3, 1);  // merges 2,3
  g.add_edge(0, 2, 9);
  g.add_edge(1, 3, 5);  // parallel after contraction; keep 5
  const auto c = contract_unit_edges(g);
  EXPECT_EQ(c.graph.node_count(), 2u);
  EXPECT_EQ(c.graph.edge_count(), 1u);
  EXPECT_EQ(c.graph.edges()[0].weight, 5u);
}

// Lemma 4.3 property: D_{G'} <= D_G <= D_{G'} + n, same for radius.
class ContractionLemmaTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContractionLemmaTest, SandwichBounds) {
  Rng rng(GetParam());
  auto g = gen::erdos_renyi_connected(20, 0.15, rng);
  // Mix unit and heavy weights.
  g = g.reweighted([&](Weight) {
    return rng.chance(0.5) ? Weight{1} : Weight{50 + rng.below(50)};
  });
  const auto c = contract_unit_edges(g);
  if (c.graph.node_count() < 2) return;  // fully contracted: trivial
  const Dist dg = weighted_diameter(g);
  const Dist dc = weighted_diameter(c.graph);
  EXPECT_LE(dc, dg);
  EXPECT_LE(dg, dc + g.node_count());
  const Dist rg = weighted_radius(g);
  const Dist rc = weighted_radius(c.graph);
  EXPECT_LE(rc, rg);
  EXPECT_LE(rg, rc + g.node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractionLemmaTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace qc
