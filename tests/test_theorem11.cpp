// Tests for the Theorem 1.1 driver's oracle fast path (docs/perf.md):
// oracle-mode and worker-count invariance of the result, the census
// flag, the lazy memoized oracle, the trimmed set evaluation, and the
// first-index tie-breaking convention of the witness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "quantum/framework.h"
#include "util/error.h"
#include "util/rng.h"

namespace qc::core {
namespace {

WeightedGraph weighted_test_graph(std::uint64_t seed, NodeId n,
                                  Weight max_w) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 0.12, rng);
  return gen::randomize_weights(g, max_w, rng);
}

// ---------------------------------------------------------------------
// Oracle-mode invariance
// ---------------------------------------------------------------------

struct ModeCase {
  std::uint64_t seed;
  NodeId n;
  bool radius;
};

class OracleModeTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(OracleModeTest, AllModesAgreeWithEagerSerial) {
  const auto c = GetParam();
  const auto g = weighted_test_graph(c.seed, c.n, 7);
  Theorem11Options opt;
  opt.seed = c.seed + 17;
  opt.census = true;  // include the census fields in the comparison

  const auto run = [&](OracleMode m) {
    Theorem11Options o = opt;
    o.oracle_mode = m;
    return c.radius ? quantum_weighted_radius(g, o)
                    : quantum_weighted_diameter(g, o);
  };

  const auto eager = run(OracleMode::kEagerSerial);
  EXPECT_FALSE(eager.oracle.lazy);
  EXPECT_EQ(eager.oracle.skeletons_built, eager.oracle.sets_nonempty);

  for (const OracleMode m : {OracleMode::kEagerPooled,
                             OracleMode::kLazySerial,
                             OracleMode::kLazyPooled}) {
    const auto res = run(m);
    EXPECT_TRUE(semantically_equal(eager, res))
        << "mode " << static_cast<int>(m) << " diverged";
    if (m == OracleMode::kLazySerial || m == OracleMode::kLazyPooled) {
      // Lazy modes materialize exactly one full skeleton: the set the
      // driver measures.
      EXPECT_TRUE(res.oracle.lazy);
      EXPECT_EQ(res.oracle.skeletons_built, 1u);
      EXPECT_GT(res.oracle.value_evaluations, 0u);
    }
    EXPECT_EQ(res.oracle.sets_nonempty, eager.oracle.sets_nonempty);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, OracleModeTest,
                         ::testing::Values(ModeCase{1, 26, false},
                                           ModeCase{2, 32, false},
                                           ModeCase{3, 26, true},
                                           ModeCase{4, 32, true}));

TEST(OracleMode, WorkerCountNeverChangesTheResult) {
  const auto g = weighted_test_graph(11, 30, 6);
  for (const bool radius : {false, true}) {
    for (const OracleMode m :
         {OracleMode::kEagerPooled, OracleMode::kLazyPooled}) {
      Theorem11Options opt;
      opt.seed = 23;
      opt.census = true;
      opt.oracle_mode = m;
      opt.oracle_workers = 1;
      const auto one = radius ? quantum_weighted_radius(g, opt)
                              : quantum_weighted_diameter(g, opt);
      for (const unsigned w : {2u, 8u}) {
        opt.oracle_workers = w;
        const auto many = radius ? quantum_weighted_radius(g, opt)
                                 : quantum_weighted_diameter(g, opt);
        EXPECT_TRUE(semantically_equal(one, many))
            << "workers " << w << (radius ? " (radius)" : " (diameter)");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Census flag
// ---------------------------------------------------------------------

TEST(Census, OffLeavesOnlyReportingFieldsEmpty) {
  const auto g = weighted_test_graph(7, 28, 8);
  Theorem11Options opt;
  opt.seed = 9;
  opt.census = true;
  const auto on = quantum_weighted_diameter(g, opt);
  opt.census = false;
  const auto off = quantum_weighted_diameter(g, opt);

  // The census populates exactly its four reporting fields...
  EXPECT_GT(on.exact, 0u);
  EXPECT_GT(on.ratio, 0.0);
  EXPECT_TRUE(on.within_bound);
  EXPECT_GE(on.good_sets, 1u);
  EXPECT_EQ(off.exact, 0u);
  EXPECT_EQ(off.ratio, 0.0);
  EXPECT_FALSE(off.within_bound);
  EXPECT_EQ(off.good_sets, 0u);

  // ...and nothing else: answer, costs, and diagnostics are untouched.
  EXPECT_EQ(on.estimate_scaled, off.estimate_scaled);
  EXPECT_EQ(on.total_scale, off.total_scale);
  EXPECT_EQ(on.estimate, off.estimate);
  EXPECT_EQ(on.epsilon, off.epsilon);
  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.t0_outer, off.t0_outer);
  EXPECT_EQ(on.t1_outer, off.t1_outer);
  EXPECT_EQ(on.t2_outer, off.t2_outer);
  EXPECT_EQ(on.outer_calls, off.outer_calls);
  EXPECT_EQ(on.inner_budget_calls, off.inner_budget_calls);
  EXPECT_EQ(on.measured.t0_rounds, off.measured.t0_rounds);
  EXPECT_EQ(on.measured.t_setup_rounds, off.measured.t_setup_rounds);
  EXPECT_EQ(on.measured.t_eval_rounds, off.measured.t_eval_rounds);
  EXPECT_EQ(on.d_hat, off.d_hat);
  EXPECT_EQ(on.chosen_set, off.chosen_set);
  EXPECT_EQ(on.chosen_set_size, off.chosen_set_size);
  EXPECT_EQ(on.witness, off.witness);
  EXPECT_EQ(on.distributed_value_matches, off.distributed_value_matches);
}

// ---------------------------------------------------------------------
// Witness tie-breaking
// ---------------------------------------------------------------------

// On a uniform-weight complete graph every node has the same (exact and
// approximate) eccentricity, so every member of the chosen set ties.
// The documented convention (theorem11.h) is that ties go to the lowest
// member index — replaying the driver's sampling stream recovers the
// chosen set's members and pins the witness to its first one.
TEST(Ties, WitnessIsLowestMemberOnUniformCompleteGraph) {
  const NodeId n = 24;
  const auto g = gen::complete(n);
  for (const bool radius : {false, true}) {
    Theorem11Options opt;
    opt.seed = 31;
    opt.census = true;
    const auto res = radius ? quantum_weighted_radius(g, opt)
                            : quantum_weighted_diameter(g, opt);
    // Replay the sampling: same d_hat -> same params -> same p, and the
    // driver draws the n sets first on a fresh Rng(seed).
    const auto params = paths::Params::make(n, res.d_hat, opt.eps_inv);
    ASSERT_EQ(params.r, res.params.r);
    Rng rng(opt.seed);
    const double p = static_cast<double>(params.r) / n;
    std::vector<std::vector<NodeId>> sets(n);
    for (std::size_t i = 0; i < n; ++i) sets[i] = rng.sample_indices(n, p);
    const auto& chosen = sets[res.chosen_set];
    ASSERT_EQ(chosen.size(), res.chosen_set_size);
    ASSERT_FALSE(chosen.empty());
    EXPECT_EQ(res.witness, chosen.front())
        << (radius ? "radius" : "diameter")
        << ": all members tie, so the witness must be the first";
  }
}

// ---------------------------------------------------------------------
// Trimmed set evaluation vs full skeleton construction
// ---------------------------------------------------------------------

TEST(EvaluateSet, MatchesBuildSkeletonExactly) {
  const auto g = weighted_test_graph(13, 30, 9);
  const auto params =
      paths::Params::make(g.node_count(), unweighted_diameter(g));
  paths::ToolkitCache cache(g, params);
  paths::SetEvalWorkspace ws;
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const auto set = rng.sample_indices(g.node_count(), 0.2);
    if (set.empty()) continue;
    const auto sk = paths::build_skeleton(
        g, params, std::vector<NodeId>(set.begin(), set.end()));
    const auto ev =
        cache.evaluate_set(std::vector<NodeId>(set.begin(), set.end()), ws);
    EXPECT_EQ(ev.total_scale, sk.total_scale());
    EXPECT_EQ(ev.total_scale, params.total_scale(set.size()));
    ASSERT_EQ(ev.member_ecc.size(), sk.size());
    for (std::uint32_t a = 0; a < sk.size(); ++a) {
      EXPECT_EQ(ev.member_ecc[a], sk.approx_eccentricity(a))
          << "trial " << trial << " member " << a;
    }
  }
}

// ---------------------------------------------------------------------
// LazyOracle
// ---------------------------------------------------------------------

TEST(LazyOracle, MemoizesAndCountsEvaluations) {
  std::uint64_t calls = 0;
  quantum::LazyOracle o(5, [&](std::size_t x) {
    ++calls;
    return static_cast<std::int64_t>(10 * x);
  });
  EXPECT_EQ(o.size(), 5u);
  EXPECT_FALSE(o.known(3));
  EXPECT_EQ(o.value(3), 30);
  EXPECT_TRUE(o.known(3));
  EXPECT_EQ(o.value(3), 30);  // served from the memo
  EXPECT_EQ(o.value(0), 0);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(o.evaluations(), 2u);
  EXPECT_EQ(o.hits(), 1u);
}

TEST(LazyOracle, PrefillSkipsTheCallbackAndMustAgree) {
  std::uint64_t calls = 0;
  quantum::LazyOracle o(3, [&](std::size_t x) {
    ++calls;
    return static_cast<std::int64_t>(x) + 100;
  });
  o.prefill(1, 101);
  EXPECT_TRUE(o.known(1));
  EXPECT_EQ(o.value(1), 101);
  EXPECT_EQ(calls, 0u);           // never invoked
  EXPECT_EQ(o.evaluations(), 0u); // prefill does not count
  o.prefill(1, 101);              // idempotent re-install is fine
  EXPECT_THROW(o.prefill(1, 999), InvariantError);
  EXPECT_THROW(o.value(3), ArgumentError);  // out of range
}

// ---------------------------------------------------------------------
// Geometric skip sampling (Rng::sample_indices)
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Resident toolkit cache (Theorem11Options::toolkit)
// ---------------------------------------------------------------------

TEST(ResidentToolkit, MatchesPerRunCacheAndIsReused) {
  const auto g = weighted_test_graph(21, 26, 9);
  Theorem11Options opt;
  opt.seed = 4;
  opt.oracle_mode = OracleMode::kLazySerial;
  const auto baseline = quantum_weighted_diameter(g, opt);

  // derive_params must be exactly what the run derived.
  const auto params = derive_params(g, opt);
  EXPECT_EQ(params.eps_inv, baseline.params.eps_inv);
  EXPECT_EQ(params.r, baseline.params.r);
  EXPECT_EQ(params.ell, baseline.params.ell);
  EXPECT_EQ(params.k, baseline.params.k);

  paths::ToolkitCache cache(g, params);
  EXPECT_EQ(cache.cached_row_count(), 0u);
  opt.toolkit = &cache;
  const auto resident = quantum_weighted_diameter(g, opt);
  EXPECT_TRUE(semantically_equal(baseline, resident));
  const auto rows = cache.cached_row_count();
  EXPECT_GT(rows, 0u);

  // Second run against the warm rows: identical answer, rows retained.
  const auto again = quantum_weighted_diameter(g, opt);
  EXPECT_TRUE(semantically_equal(baseline, again));
  EXPECT_GE(cache.cached_row_count(), rows);

  // The radius run shares the same cache — Params don't depend on
  // which problem is being solved.
  Theorem11Options no_cache = opt;
  no_cache.toolkit = nullptr;
  EXPECT_TRUE(semantically_equal(quantum_weighted_radius(g, opt),
                                 quantum_weighted_radius(g, no_cache)));
}

TEST(ResidentToolkit, RejectsMismatchedCache) {
  const auto g = weighted_test_graph(22, 24, 7);
  Theorem11Options opt;
  opt.oracle_mode = OracleMode::kLazySerial;

  // Same data, different graph object: identity is the contract (the
  // cache holds a pointer into the graph it was built on).
  const WeightedGraph copy = g;
  paths::ToolkitCache other_graph(copy, derive_params(copy, opt));
  opt.toolkit = &other_graph;
  EXPECT_THROW(quantum_weighted_diameter(g, opt), ArgumentError);

  // Right graph, wrong Params (built under an eps_inv override the run
  // won't use).
  Theorem11Options overridden;
  overridden.eps_inv = 16;
  paths::ToolkitCache wrong_params(g, derive_params(g, overridden));
  opt.toolkit = &wrong_params;
  EXPECT_THROW(quantum_weighted_diameter(g, opt), ArgumentError);
}

TEST(SampleIndices, SortedUniqueAndEdgeCases) {
  Rng rng(5);
  EXPECT_TRUE(rng.sample_indices(0, 0.5).empty());
  EXPECT_TRUE(rng.sample_indices(100, 0.0).empty());
  const auto all = rng.sample_indices(50, 1.0);
  ASSERT_EQ(all.size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(all[i], i);
  for (int t = 0; t < 20; ++t) {
    const auto s = rng.sample_indices(200, 0.3);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (const auto v : s) EXPECT_LT(v, 200u);
  }
}

TEST(SampleIndices, MeanTracksNP) {
  Rng rng(8);
  const std::uint32_t n = 400;
  const double p = 0.15;
  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(rng.sample_indices(n, p).size());
  }
  const double mean = total / trials;
  // E = np = 60, sd of the mean = sqrt(np(1-p)/trials) ~ 0.5; 5 sigma.
  EXPECT_NEAR(mean, n * p, 2.5);
}

}  // namespace
}  // namespace qc::core
