// The million-node dataset layer: bgraph v1 binary edge lists, the
// packed/mappable bcsr v1 CSR image, the streaming power-law
// generators, and the large-n determinism contract (pool-parallel
// kernels and the sharded-merge simulator stay byte-identical at any
// worker count even at n = 10^5). docs/datasets.md specs the formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/simulator.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "runtime/thread_pool.h"
#include "util/error.h"
#include "util/rng.h"

namespace qc {
namespace {

using namespace congest;  // NOLINT: Simulator, NodeProgram, Config, ...

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "qc_datasets_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

WeightedGraph small_random(std::uint64_t seed) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(64, 0.1, rng);
  return gen::randomize_weights(g, 50, rng);
}

// Graphs compare equal iff their edge sets match (edge order is
// insertion order, so sort both — shuffled files load out of order).
void expect_same_graph(const WeightedGraph& a, const WeightedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  auto ea = a.edges();
  auto eb = b.edges();
  const auto by_pair = [](const Edge& x, const Edge& y) {
    return std::tie(x.u, x.v) < std::tie(y.u, y.v);
  };
  std::sort(ea.begin(), ea.end(), by_pair);
  std::sort(eb.begin(), eb.end(), by_pair);
  EXPECT_EQ(ea, eb);
}

void expect_same_csr(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.max_weight(), b.max_weight());
  ASSERT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin(), b.offsets().end()));
  ASSERT_EQ(a.halves().size(), b.halves().size());
  for (std::size_t i = 0; i < a.halves().size(); ++i) {
    EXPECT_EQ(a.halves()[i].to, b.halves()[i].to) << i;
    EXPECT_EQ(a.halves()[i].weight, b.halves()[i].weight) << i;
  }
}

// --- bgraph round trips -----------------------------------------------

TEST(BGraph, RoundTripMatchesTextGolden) {
  const auto g = small_random(7);
  const std::string bg = tmp_path("roundtrip.bg");
  const BGraphInfo info = write_bgraph(g, bg);
  EXPECT_EQ(info.n, g.node_count());
  EXPECT_EQ(info.m, g.edge_count());
  EXPECT_TRUE(info.sorted);  // canonical edge order is sorted
  expect_same_graph(load_bgraph(bg), g);

  // Text -> binary -> text round trip agrees with the text golden.
  const std::string txt = tmp_path("roundtrip.wg");
  const std::string txt2 = tmp_path("roundtrip2.wg");
  const std::string bg2 = tmp_path("roundtrip2.bg");
  save_graph(g, txt);
  convert_text_to_bgraph(txt, bg2);
  expect_same_graph(load_bgraph(bg2), g);
  convert_bgraph_to_text(bg2, txt2);
  expect_same_graph(load_graph(txt2), g);
}

TEST(BGraph, WriterStreamsAndPatchesHeader) {
  const std::string path = tmp_path("writer.bg");
  {
    BGraphWriter w(path, 5);
    w.add(0, 1, 3);
    w.add(0, 2, 9);
    w.add(3, 4, 1);
    EXPECT_EQ(w.edges_written(), 3u);
    const BGraphInfo info = w.close();
    EXPECT_EQ(info.m, 3u);
    EXPECT_EQ(info.max_weight, 9u);
    EXPECT_TRUE(info.sorted);
  }
  BGraphReader r(path);
  Edge e;
  std::uint64_t seen = 0;
  while (r.next(e)) ++seen;
  EXPECT_EQ(seen, 3u);

  // Out-of-order writes clear the sorted flag but stay valid.
  {
    BGraphWriter w(path, 5);
    w.add(3, 4, 1);
    w.add(0, 1, 3);
    EXPECT_FALSE(w.close().sorted);
  }
  EXPECT_FALSE(BGraphReader(path).info().sorted);
}

TEST(BGraph, WriterRejectsNonCanonicalRecords) {
  const std::string path = tmp_path("badadd.bg");
  BGraphWriter w(path, 4);
  EXPECT_THROW(w.add(2, 1, 1), ArgumentError);   // u >= v
  EXPECT_THROW(w.add(1, 1, 1), ArgumentError);   // self loop
  EXPECT_THROW(w.add(1, 4, 1), ArgumentError);   // v >= n
  EXPECT_THROW(w.add(1, 2, 0), ArgumentError);   // zero weight
  w.add(1, 2, 1);
  w.close();
}

TEST(BGraph, ShuffleThenSortRestoresCanonicalBytes) {
  const auto g = small_random(11);
  const std::string canon = tmp_path("canon.bg");
  const std::string shuf = tmp_path("shuf.bg");
  const std::string resort = tmp_path("resort.bg");
  write_bgraph(g, canon);
  shuffle_bgraph(canon, shuf, /*seed=*/99);
  EXPECT_NE(slurp(canon), slurp(shuf));  // order (and flags) changed
  expect_same_graph(load_bgraph(shuf), g);
  sort_bgraph(shuf, resort);
  EXPECT_EQ(slurp(canon), slurp(resort));

  // Same shuffle seed -> same bytes; different seed -> different order.
  const std::string shuf2 = tmp_path("shuf2.bg");
  shuffle_bgraph(canon, shuf2, /*seed=*/99);
  EXPECT_EQ(slurp(shuf), slurp(shuf2));
}

TEST(BGraph, SortRejectsDuplicateEdges) {
  const std::string path = tmp_path("dup.bg");
  const std::string sorted = tmp_path("dup_sorted.bg");
  {
    BGraphWriter w(path, 4);
    w.add(2, 3, 5);
    w.add(0, 1, 1);
    w.add(2, 3, 7);  // duplicate pair, different weight
    w.close();
  }
  EXPECT_THROW(sort_bgraph(path, sorted), ArgumentError);
}

TEST(BGraph, SummaryCountsDegreesAndWeights) {
  const std::string path = tmp_path("summary.bg");
  {
    BGraphWriter w(path, 6);  // star around node 0 + one extra edge
    w.add(0, 1, 2);
    w.add(0, 2, 8);
    w.add(0, 3, 2);
    w.add(0, 4, 4);
    w.add(1, 2, 3);
    w.close();
  }
  const BGraphSummary s = summarize_bgraph(path);
  EXPECT_EQ(s.info.m, 5u);
  EXPECT_EQ(s.min_weight, 2u);
  EXPECT_EQ(s.info.max_weight, 8u);
  EXPECT_EQ(s.max_degree, 4u);  // node 0
  EXPECT_EQ(s.isolated, 1u);    // node 5
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0 * 5 / 6);
  ASSERT_GE(s.degree_hist_log2.size(), 3u);
  EXPECT_EQ(s.degree_hist_log2[0], 2u);  // degree 1: nodes 3, 4
  EXPECT_EQ(s.degree_hist_log2[1], 2u);  // degree 2..3: nodes 1, 2
  EXPECT_EQ(s.degree_hist_log2[2], 1u);  // degree 4..7: node 0
}

// --- malformed input rejection (byte offsets in every message) --------

std::string valid_bytes() {
  const auto g = small_random(3);
  const std::string path = tmp_path("valid.bg");
  write_bgraph(g, path);
  return slurp(path);
}

void expect_rejected_mentioning(const std::string& bytes,
                                const std::string& needle) {
  const std::string path = tmp_path("mutant.bg");
  spit(path, bytes);
  try {
    WeightedGraph g = load_bgraph(path);
    FAIL() << "expected ArgumentError mentioning '" << needle << "'";
  } catch (const ArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(BGraph, RejectsCorruptHeaderWithByteOffsets) {
  const std::string good = valid_bytes();

  std::string bad = good;
  bad[0] = 'X';  // magic
  expect_rejected_mentioning(bad, "byte 0");

  bad = good;
  bad[8] = 2;  // version field at offset 8
  expect_rejected_mentioning(bad, "byte 8");

  bad = good;
  bad[16 + 4] = 0x01;  // n at offset 16 pushed past 2^32
  expect_rejected_mentioning(bad, "byte 16");

  bad = good;
  bad[24 + 6] = 0x7f;  // m at offset 24 overflows the payload size
  expect_rejected_mentioning(bad, "byte 24");

  bad = good;
  for (int i = 0; i < 8; ++i) bad[32 + i] = 0;  // max_weight = 0
  expect_rejected_mentioning(bad, "byte 32");
}

TEST(BGraph, RejectsTruncatedAndOversizedFiles) {
  const std::string good = valid_bytes();
  // Too short for even the header.
  expect_rejected_mentioning(good.substr(0, 20), "");
  // One record byte missing / one extra byte appended: the exact-size
  // check fires before any record is produced.
  expect_rejected_mentioning(good.substr(0, good.size() - 1),
                             "overflows the file");
  expect_rejected_mentioning(good + "x", "size mismatch");
}

TEST(BGraph, RejectsCorruptRecordsWithByteOffsets) {
  const std::string good = valid_bytes();
  const auto record_off = [](std::size_t i) {
    return kBGraphHeaderBytes + i * kBGraphRecordBytes;
  };
  const auto offset_str = [&](std::size_t i) {
    return "byte " + std::to_string(record_off(i));
  };

  // Record 2: u = v (equal endpoints).
  std::string bad = good;
  std::copy_n(&good[record_off(2) + 4], 4, &bad[record_off(2)]);
  expect_rejected_mentioning(bad, offset_str(2));

  // Record 0: v >= n.
  bad = good;
  bad[record_off(0) + 4 + 3] = 0x7f;
  expect_rejected_mentioning(bad, offset_str(0));

  // Record 1: weight 0.
  bad = good;
  for (int i = 0; i < 8; ++i) bad[record_off(1) + 8 + i] = 0;
  expect_rejected_mentioning(bad, offset_str(1));

  // Record 3: weight above the header max_weight.
  bad = good;
  bad[record_off(3) + 8 + 6] = 0x7f;
  expect_rejected_mentioning(bad, offset_str(3));
}

// --- streaming CSR build ----------------------------------------------

TEST(BcsrIo, StreamBuildMatchesInMemoryCsr) {
  const auto g = small_random(19);
  const std::string path = tmp_path("stream.bg");
  write_bgraph(g, path);
  const CsrGraph streamed = csr_from_bgraph(path);
  expect_same_csr(streamed, g.csr());
  // And the kernels agree end to end.
  EXPECT_EQ(dijkstra(streamed, 0), dijkstra(g, 0));
  EXPECT_EQ(eccentricities(streamed), eccentricities(g));
}

TEST(BcsrIo, WriteReadMapAllAgree) {
  const auto g = small_random(23);
  const std::string path = tmp_path("image.bcsr");
  write_csr(g.csr(), path);

  const CsrGraph copied = read_csr(path);
  EXPECT_FALSE(copied.is_mapped());
  expect_same_csr(copied, g.csr());

  const CsrGraph mapped = map_csr(path);
  EXPECT_TRUE(mapped.is_mapped());
  expect_same_csr(mapped, g.csr());
  EXPECT_EQ(dijkstra(mapped, 3), dijkstra(g, 3));
  EXPECT_EQ(bfs_distances(mapped, 3), bfs_distances(g.csr(), 3));

  // Deterministic bytes: writing the same graph twice is bit-identical
  // (padding lanes are zeroed).
  const std::string path2 = tmp_path("image2.bcsr");
  write_csr(g.csr(), path2);
  EXPECT_EQ(slurp(path), slurp(path2));
}

TEST(BcsrIo, MappedCopiesShareAndReweightDetaches) {
  const auto g = small_random(29);
  const std::string path = tmp_path("detach.bcsr");
  write_csr(g.csr(), path);

  const CsrGraph mapped = map_csr(path);
  const CsrGraph share = mapped;  // copy of a mapped graph shares pages
  EXPECT_TRUE(share.is_mapped());
  EXPECT_EQ(share.halves().data(), mapped.halves().data());

  // assign_reweighted must never write through the read-only mapping —
  // both from a mapped base and on the self path.
  CsrGraph target = map_csr(path);
  target.assign_reweighted(target, [](Weight) { return Weight{7}; });
  EXPECT_FALSE(target.is_mapped());
  for (const auto& h : target.halves()) EXPECT_EQ(h.weight, 7u);
  CsrGraph from_base;
  from_base.assign_reweighted(mapped, [](Weight w) { return w + 1; });
  EXPECT_FALSE(from_base.is_mapped());
  // The source mapping is untouched by either path.
  expect_same_csr(mapped, g.csr());
}

TEST(BcsrIo, MapRejectsCorruptOffsets) {
  const auto g = small_random(31);
  const std::string path = tmp_path("corrupt.bcsr");
  write_csr(g.csr(), path);
  std::string bytes = slurp(path);
  // Break monotonicity of the offsets array (first entry after the
  // 48-byte header must be 0).
  bytes[kBGraphHeaderBytes] = 0x05;
  const std::string bad = tmp_path("corrupt2.bcsr");
  spit(bad, bytes);
  EXPECT_THROW(map_csr(bad), ArgumentError);
  EXPECT_THROW(read_csr(bad), ArgumentError);
}

// --- streaming generators ---------------------------------------------

TEST(StreamingGenerators, SeedDeterministicByteIdenticalFiles) {
  const std::string a = tmp_path("gen_a.bg");
  const std::string b = tmp_path("gen_b.bg");

  gen::rmat_bgraph(a, /*scale=*/10, /*target_edges=*/4096, /*max_w=*/32, 5);
  gen::rmat_bgraph(b, /*scale=*/10, /*target_edges=*/4096, /*max_w=*/32, 5);
  EXPECT_EQ(slurp(a), slurp(b));
  gen::rmat_bgraph(b, 10, 4096, 32, /*seed=*/6);
  EXPECT_NE(slurp(a), slurp(b));

  gen::chung_lu_bgraph(a, /*n=*/1024, /*target_edges=*/4096,
                       /*exponent=*/2.5, /*max_w=*/32, 5);
  gen::chung_lu_bgraph(b, 1024, 4096, 2.5, 32, 5);
  EXPECT_EQ(slurp(a), slurp(b));

  gen::erdos_renyi_bgraph(a, /*n=*/1024, /*p=*/0.01, /*max_w=*/32, 5);
  gen::erdos_renyi_bgraph(b, 1024, 0.01, 32, 5);
  EXPECT_EQ(slurp(a), slurp(b));
}

TEST(StreamingGenerators, OutputsAreCanonicalConnectedAndOnBudget) {
  const std::string path = tmp_path("gen_check.bg");
  const auto check = [&](const BGraphInfo& info, std::uint64_t n,
                         std::uint64_t at_least_m) {
    EXPECT_EQ(info.n, n);
    EXPECT_GE(info.m, at_least_m);  // repair edges may add a few
    // sort_bgraph doubles as the full duplicate-freedom validator.
    const std::string sorted = tmp_path("gen_check_sorted.bg");
    sort_bgraph(path, sorted);
    const WeightedGraph g = load_bgraph(sorted);
    const auto d = bfs_distances(g, 0);
    EXPECT_TRUE(std::none_of(d.begin(), d.end(),
                             [](Dist x) { return x == kInfDist; }))
        << "generator output must be connected";
  };
  check(gen::rmat_bgraph(path, 9, 2048, 16, 77), 512, 2048);
  check(gen::chung_lu_bgraph(path, 700, 2100, 2.3, 16, 77), 700, 2100);
  check(gen::erdos_renyi_bgraph(path, 600, 0.012, 16, 77), 600, 1);

  // RMAT degree skew: the classic parameters concentrate mass on low
  // ids, so the max degree far exceeds the average.
  gen::rmat_bgraph(path, 10, 8192, 16, 3);
  const BGraphSummary s = summarize_bgraph(path);
  EXPECT_GE(s.max_degree, static_cast<std::uint64_t>(4 * s.avg_degree));
}

TEST(StreamingGenerators, RejectsInfeasibleParameters) {
  const std::string path = tmp_path("gen_bad.bg");
  // Target above the simple-graph ceiling n(n-1)/2.
  EXPECT_THROW(gen::rmat_bgraph(path, 3, 100, 8, 1), ArgumentError);
  EXPECT_THROW(gen::chung_lu_bgraph(path, 8, 100, 2.5, 8, 1),
               ArgumentError);
  EXPECT_THROW(gen::chung_lu_bgraph(path, 8, 4, /*exponent=*/1.5, 8, 1),
               ArgumentError);
  EXPECT_THROW(gen::erdos_renyi_bgraph(path, 8, 1.5, 8, 1), ArgumentError);
  EXPECT_THROW(gen::erdos_renyi_bgraph(path, 8, 0.5, /*max_w=*/0, 1),
               ArgumentError);
}

// --- the large-n determinism contract (ISSUE 8 acceptance) ------------

// Shared n = 10^5 dataset for the worker-identity tests below: RMAT
// scale 17 (131072 nodes) streamed to disk once, then CSR-built.
class LargeN : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(tmp_path("large_n.bg"));
    info_ = new BGraphInfo(
        gen::rmat_bgraph(*path_, /*scale=*/17, /*target_edges=*/400000,
                         /*max_w=*/100, /*seed=*/20260808));
    csr_ = new CsrGraph(csr_from_bgraph(*path_));
  }
  static void TearDownTestSuite() {
    delete csr_;
    csr_ = nullptr;
    delete info_;
    info_ = nullptr;
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
  }

  static std::string* path_;
  static BGraphInfo* info_;
  static CsrGraph* csr_;
};

std::string* LargeN::path_ = nullptr;
BGraphInfo* LargeN::info_ = nullptr;
CsrGraph* LargeN::csr_ = nullptr;

TEST_F(LargeN, SampledEccentricitiesByteIdenticalAtWorkerCounts) {
  ASSERT_GE(csr_->node_count(), 100000u);
  // 32 sample sources spread across the id space (RMAT skew means they
  // cover wildly different degrees).
  std::vector<NodeId> sources;
  for (NodeId s = 0; s < csr_->node_count();
       s += csr_->node_count() / 32) {
    sources.push_back(s);
  }
  runtime::ThreadPool one(1);
  const auto golden = eccentricities(*csr_, std::span(sources), &one);
  ASSERT_EQ(golden.size(), sources.size());
  // Connected dataset: every sampled eccentricity is finite.
  EXPECT_TRUE(std::none_of(golden.begin(), golden.end(),
                           [](Dist d) { return d == kInfDist; }));
  for (const unsigned workers : {2u, 8u}) {
    runtime::ThreadPool pool(workers);
    EXPECT_EQ(eccentricities(*csr_, std::span(sources), &pool), golden)
        << "workers=" << workers;
  }
}

// Hop-level flood from a root: each node adopts 1 + the minimum level
// in its first non-empty inbox (synchronous rounds make that the exact
// BFS distance), re-broadcasts once, and goes quiet.
class BfsFloodProgram final : public NodeProgram {
 public:
  explicit BfsFloodProgram(NodeId root) : root_(root) {}
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      level_ = 0;
      Message m;
      m.push(0, 32);
      ctx.broadcast(m);
      sent_ = true;
    }
  }
  void on_round(NodeContext& ctx,
                std::span<const Incoming> inbox) override {
    if (level_ != kInfDist || inbox.empty()) return;
    Dist best = kInfDist;
    for (const Incoming& in : inbox) {
      best = std::min(best, static_cast<Dist>(in.msg.field(0)) + 1);
    }
    level_ = best;
    Message m;
    m.push(level_, 32);
    ctx.broadcast(m);
    sent_ = true;
  }
  bool done() const override { return sent_; }
  Dist level() const { return level_; }

 private:
  NodeId root_ = 0;
  Dist level_ = kInfDist;
  bool sent_ = false;
};

// A BFS flood over the full 10^5-node graph through the sharded merge:
// stats, per-round metrics, and program outputs byte-identical at
// workers 1/2/8. (The trace is left off — recording 10^5 nodes' sends
// would swamp the test — the ledger digest inside RunStats still pins
// every message byte.)
struct FloodCapture {
  RunStats stats;
  std::vector<RoundMetrics> metrics;
  std::vector<Dist> hops;
  friend bool operator==(const FloodCapture&, const FloodCapture&) = default;
};

TEST_F(LargeN, ShardedMergeSimulatorByteIdenticalAtWorkerCounts) {
  const WeightedGraph g = load_bgraph(*path_);
  ASSERT_GE(g.node_count(), 100000u);

  const auto run = [&](unsigned workers) {
    Config cfg;
    cfg.workers = workers;
    cfg.execution.sharded_merge_min_messages = 0;  // force sharded path
    FloodCapture cap;
    cfg.on_round_metrics = [&](const RoundMetrics& rm) {
      cap.metrics.push_back(rm);
    };
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      programs.push_back(std::make_unique<BfsFloodProgram>(/*root=*/0));
    }
    Simulator sim(g, cfg);
    cap.stats = sim.run(programs);
    cap.hops.reserve(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      cap.hops.push_back(
          static_cast<const BfsFloodProgram&>(*programs[v]).level());
    }
    return cap;
  };

  const FloodCapture golden = run(1);
  EXPECT_EQ(golden.hops, bfs_distances(g, 0));
  for (const unsigned workers : {2u, 8u}) {
    EXPECT_EQ(run(workers), golden) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace qc
