// The million-node dataset layer: bgraph v1 binary edge lists, the
// packed/mappable bcsr v1 CSR image, the streaming power-law
// generators, and the large-n determinism contract (pool-parallel
// kernels and the sharded-merge simulator stay byte-identical at any
// worker count even at n = 10^5). docs/datasets.md specs the formats.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "congest/simulator.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "runtime/thread_pool.h"
#include "util/error.h"
#include "util/rng.h"

namespace qc {
namespace {

using namespace congest;  // NOLINT: Simulator, NodeProgram, Config, ...

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "qc_datasets_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

WeightedGraph small_random(std::uint64_t seed) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(64, 0.1, rng);
  return gen::randomize_weights(g, 50, rng);
}

// Graphs compare equal iff their edge sets match (edge order is
// insertion order, so sort both — shuffled files load out of order).
void expect_same_graph(const WeightedGraph& a, const WeightedGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  auto ea = a.edges();
  auto eb = b.edges();
  const auto by_pair = [](const Edge& x, const Edge& y) {
    return std::tie(x.u, x.v) < std::tie(y.u, y.v);
  };
  std::sort(ea.begin(), ea.end(), by_pair);
  std::sort(eb.begin(), eb.end(), by_pair);
  EXPECT_EQ(ea, eb);
}

void expect_same_csr(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.max_weight(), b.max_weight());
  ASSERT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(),
                         b.offsets().begin(), b.offsets().end()));
  ASSERT_EQ(a.halves().size(), b.halves().size());
  for (std::size_t i = 0; i < a.halves().size(); ++i) {
    EXPECT_EQ(a.halves()[i].to, b.halves()[i].to) << i;
    EXPECT_EQ(a.halves()[i].weight, b.halves()[i].weight) << i;
  }
}

// --- bgraph round trips -----------------------------------------------

TEST(BGraph, RoundTripMatchesTextGolden) {
  const auto g = small_random(7);
  const std::string bg = tmp_path("roundtrip.bg");
  const BGraphInfo info = write_bgraph(g, bg);
  EXPECT_EQ(info.n, g.node_count());
  EXPECT_EQ(info.m, g.edge_count());
  EXPECT_TRUE(info.sorted);  // canonical edge order is sorted
  expect_same_graph(load_bgraph(bg), g);

  // Text -> binary -> text round trip agrees with the text golden.
  const std::string txt = tmp_path("roundtrip.wg");
  const std::string txt2 = tmp_path("roundtrip2.wg");
  const std::string bg2 = tmp_path("roundtrip2.bg");
  save_graph(g, txt);
  convert_text_to_bgraph(txt, bg2);
  expect_same_graph(load_bgraph(bg2), g);
  convert_bgraph_to_text(bg2, txt2);
  expect_same_graph(load_graph(txt2), g);
}

TEST(BGraph, WriterStreamsAndPatchesHeader) {
  const std::string path = tmp_path("writer.bg");
  {
    BGraphWriter w(path, 5);
    w.add(0, 1, 3);
    w.add(0, 2, 9);
    w.add(3, 4, 1);
    EXPECT_EQ(w.edges_written(), 3u);
    const BGraphInfo info = w.close();
    EXPECT_EQ(info.m, 3u);
    EXPECT_EQ(info.max_weight, 9u);
    EXPECT_TRUE(info.sorted);
  }
  BGraphReader r(path);
  Edge e;
  std::uint64_t seen = 0;
  while (r.next(e)) ++seen;
  EXPECT_EQ(seen, 3u);

  // Out-of-order writes clear the sorted flag but stay valid.
  {
    BGraphWriter w(path, 5);
    w.add(3, 4, 1);
    w.add(0, 1, 3);
    EXPECT_FALSE(w.close().sorted);
  }
  EXPECT_FALSE(BGraphReader(path).info().sorted);
}

TEST(BGraph, ReaderRewindAndSeekAfterPartialReads) {
  const auto g = small_random(13);
  const std::string path = tmp_path("rewind.bg");
  write_bgraph(g, path);

  BGraphReader r(path);
  const std::uint64_t m = r.info().m;
  ASSERT_GE(m, 10u);
  std::vector<Edge> full;
  Edge e;
  while (r.next(e)) full.push_back(e);
  EXPECT_EQ(full.size(), m);
  EXPECT_EQ(r.records_read(), m);

  // Rewind mid-stream (after a partial read that left the IO buffer
  // half-consumed) and the stream restarts from record 0.
  r.rewind();
  EXPECT_EQ(r.records_read(), 0u);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(r.next(e));
  r.rewind();
  std::vector<Edge> again;
  while (r.next(e)) again.push_back(e);
  EXPECT_EQ(again, full);

  // seek_record lands on exact record boundaries; the sorted-order
  // check restarts at the seek target instead of tripping on the
  // unseen predecessor.
  r.seek_record(m / 2);
  EXPECT_EQ(r.records_read(), m / 2);
  std::vector<Edge> tail;
  while (r.next(e)) tail.push_back(e);
  EXPECT_EQ(tail, std::vector<Edge>(full.begin() + m / 2, full.end()));

  // Seeking to m is the empty suffix; past m is an error.
  r.seek_record(m);
  EXPECT_FALSE(r.next(e));
  EXPECT_THROW(r.seek_record(m + 1), ArgumentError);
}

TEST(BGraph, WriterRejectsNonCanonicalRecords) {
  const std::string path = tmp_path("badadd.bg");
  BGraphWriter w(path, 4);
  EXPECT_THROW(w.add(2, 1, 1), ArgumentError);   // u >= v
  EXPECT_THROW(w.add(1, 1, 1), ArgumentError);   // self loop
  EXPECT_THROW(w.add(1, 4, 1), ArgumentError);   // v >= n
  EXPECT_THROW(w.add(1, 2, 0), ArgumentError);   // zero weight
  w.add(1, 2, 1);
  w.close();
}

TEST(BGraph, ShuffleThenSortRestoresCanonicalBytes) {
  const auto g = small_random(11);
  const std::string canon = tmp_path("canon.bg");
  const std::string shuf = tmp_path("shuf.bg");
  const std::string resort = tmp_path("resort.bg");
  write_bgraph(g, canon);
  shuffle_bgraph(canon, shuf, /*seed=*/99);
  EXPECT_NE(slurp(canon), slurp(shuf));  // order (and flags) changed
  expect_same_graph(load_bgraph(shuf), g);
  sort_bgraph(shuf, resort);
  EXPECT_EQ(slurp(canon), slurp(resort));

  // Same shuffle seed -> same bytes; different seed -> different order.
  const std::string shuf2 = tmp_path("shuf2.bg");
  shuffle_bgraph(canon, shuf2, /*seed=*/99);
  EXPECT_EQ(slurp(shuf), slurp(shuf2));
}

TEST(BGraph, SortRejectsDuplicateEdges) {
  const std::string path = tmp_path("dup.bg");
  const std::string sorted = tmp_path("dup_sorted.bg");
  {
    BGraphWriter w(path, 4);
    w.add(2, 3, 5);
    w.add(0, 1, 1);
    w.add(2, 3, 7);  // duplicate pair, different weight
    w.close();
  }
  EXPECT_THROW(sort_bgraph(path, sorted), ArgumentError);
}

// --- out-of-core sort and shuffle (ISSUE 10) --------------------------

TEST(BGraph, ExternalSortByteIdenticalToInMemory) {
  const auto g = small_random(37);
  const std::string canon = tmp_path("ext_canon.bg");
  const std::string shuf = tmp_path("ext_shuf.bg");
  write_bgraph(g, canon);
  shuffle_bgraph(canon, shuf, /*seed=*/5);
  const std::uint64_t m = BGraphReader(canon).info().m;
  ASSERT_GE(m, 64u);

  // Golden: the in-memory fast path (default budget).
  const std::string mem = tmp_path("ext_mem.bg");
  sort_bgraph(shuf, mem);
  EXPECT_EQ(slurp(mem), slurp(canon));

  // Spill-forcing byte budgets, from a handful of runs down to
  // three-record runs (~m/3 spill files — keep the merge fan-in well
  // under the fd limit). Every budget must reproduce the in-memory
  // bytes exactly, and the spill directory must be gone afterwards.
  const std::string ext = tmp_path("ext_out.bg");
  for (const std::uint64_t budget : {std::uint64_t{1024},
                                     std::uint64_t{256},
                                     std::uint64_t{48}}) {
    ASSERT_LT(budget, m * sizeof(Edge)) << "budget must force the spill path";
    const BGraphInfo info = sort_bgraph(shuf, ext, budget);
    EXPECT_TRUE(info.sorted) << "budget=" << budget;
    EXPECT_EQ(info.m, m) << "budget=" << budget;
    EXPECT_EQ(slurp(ext), slurp(canon)) << "budget=" << budget;
    EXPECT_FALSE(std::filesystem::exists(ext + ".spill"))
        << "budget=" << budget;
  }
}

TEST(BGraph, ExternalSortRejectsDuplicatesAndCleansUp) {
  const std::string path = tmp_path("ext_dup.bg");
  const std::string sorted = tmp_path("ext_dup_sorted.bg");
  {
    BGraphWriter w(path, 64);
    for (NodeId v = 1; v < 40; ++v) w.add(0, v, v);
    w.add(5, 9, 1);
    w.add(0, 7, 3);  // duplicate of (0, 7) above, lands in a later run
    w.close();
  }
  // Budget of 10 records per run: the duplicate pair straddles runs and
  // is only adjacent inside the merge, so the merge's dedup check —
  // not the run sort — must fire.
  EXPECT_THROW(sort_bgraph(path, sorted, /*mem_budget_bytes=*/160),
               ArgumentError);
  // Error-path hygiene: no spill directory, no partial output husk.
  EXPECT_FALSE(std::filesystem::exists(sorted + ".spill"));
  EXPECT_FALSE(std::filesystem::exists(sorted));
}

TEST(BGraph, ExternalShuffleDeterministicBoundedAndLossless) {
  const auto g = small_random(41);
  const std::string canon = tmp_path("ext_shuf_canon.bg");
  write_bgraph(g, canon);
  const std::uint64_t m = BGraphReader(canon).info().m;
  const std::uint64_t budget = 512;  // 32-record budget forces buckets
  ASSERT_LT(budget, m * sizeof(Edge));

  const std::string a = tmp_path("ext_shuf_a.bg");
  const std::string b = tmp_path("ext_shuf_b.bg");
  shuffle_bgraph(canon, a, /*seed=*/99, budget);
  shuffle_bgraph(canon, b, /*seed=*/99, budget);
  EXPECT_EQ(slurp(a), slurp(b));  // pure function of (input, seed, budget)
  EXPECT_FALSE(std::filesystem::exists(a + ".spill"));

  shuffle_bgraph(canon, b, /*seed=*/100, budget);
  EXPECT_NE(slurp(a), slurp(b));  // seed changes the permutation

  // Lossless: the scattered-and-reshuffled file holds the same edge
  // set, and re-sorting restores the canonical bytes.
  expect_same_graph(load_bgraph(a), g);
  const std::string resort = tmp_path("ext_shuf_resort.bg");
  sort_bgraph(a, resort);
  EXPECT_EQ(slurp(resort), slurp(canon));
}

// Byte-mutation fuzzing aimed at the external-sort merge path: flip the
// low bit of one byte at a stride across a valid shuffled file and sort
// it with a spill-forcing budget. The stride is coprime to the record
// size, so the sweep hits every lane of the 16-byte record layout: id
// and weight low bytes usually stay in range (the mutant sorts cleanly,
// possibly as a different graph), high bytes and header fields trip
// validation. Every mutant must either sort cleanly or throw
// ArgumentError — never crash, never leave spill temp files behind.
TEST(BGraph, ExternalSortSurvivesByteMutationFuzzing) {
  const auto g = small_random(43);
  const std::string canon = tmp_path("fuzz_canon.bg");
  const std::string shuf = tmp_path("fuzz_shuf.bg");
  write_bgraph(g, canon);
  shuffle_bgraph(canon, shuf, /*seed=*/7);
  const std::string good = slurp(shuf);
  const std::string mutant = tmp_path("fuzz_mutant.bg");
  const std::string out = tmp_path("fuzz_out.bg");

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < good.size(); i += 13) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    spit(mutant, bad);
    try {
      const BGraphInfo info =
          sort_bgraph(mutant, out, /*mem_budget_bytes=*/1024);
      // Accepted mutants must still produce a well-formed sorted file.
      EXPECT_TRUE(info.sorted) << "byte " << i;
      EXPECT_TRUE(BGraphReader(out).info().sorted) << "byte " << i;
      ++accepted;
    } catch (const ArgumentError&) {
      EXPECT_FALSE(std::filesystem::exists(out + ".spill")) << "byte " << i;
      ++rejected;
    }
    EXPECT_FALSE(std::filesystem::exists(mutant + ".spill")) << "byte " << i;
  }
  // The sweep must exercise both outcomes: header/id corruption is
  // caught, weight-lane bit flips pass through.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(BGraph, SummaryCountsDegreesAndWeights) {
  const std::string path = tmp_path("summary.bg");
  {
    BGraphWriter w(path, 6);  // star around node 0 + one extra edge
    w.add(0, 1, 2);
    w.add(0, 2, 8);
    w.add(0, 3, 2);
    w.add(0, 4, 4);
    w.add(1, 2, 3);
    w.close();
  }
  const BGraphSummary s = summarize_bgraph(path);
  EXPECT_EQ(s.info.m, 5u);
  EXPECT_EQ(s.min_weight, 2u);
  EXPECT_EQ(s.info.max_weight, 8u);
  EXPECT_EQ(s.max_degree, 4u);  // node 0
  EXPECT_EQ(s.isolated, 1u);    // node 5
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0 * 5 / 6);
  ASSERT_GE(s.degree_hist_log2.size(), 3u);
  EXPECT_EQ(s.degree_hist_log2[0], 2u);  // degree 1: nodes 3, 4
  EXPECT_EQ(s.degree_hist_log2[1], 2u);  // degree 2..3: nodes 1, 2
  EXPECT_EQ(s.degree_hist_log2[2], 1u);  // degree 4..7: node 0
}

// --- malformed input rejection (byte offsets in every message) --------

std::string valid_bytes() {
  const auto g = small_random(3);
  const std::string path = tmp_path("valid.bg");
  write_bgraph(g, path);
  return slurp(path);
}

void expect_rejected_mentioning(const std::string& bytes,
                                const std::string& needle) {
  const std::string path = tmp_path("mutant.bg");
  spit(path, bytes);
  try {
    WeightedGraph g = load_bgraph(path);
    FAIL() << "expected ArgumentError mentioning '" << needle << "'";
  } catch (const ArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(BGraph, RejectsCorruptHeaderWithByteOffsets) {
  const std::string good = valid_bytes();

  std::string bad = good;
  bad[0] = 'X';  // magic
  expect_rejected_mentioning(bad, "byte 0");

  bad = good;
  bad[8] = 2;  // version field at offset 8
  expect_rejected_mentioning(bad, "byte 8");

  bad = good;
  bad[16 + 4] = 0x01;  // n at offset 16 pushed past 2^32
  expect_rejected_mentioning(bad, "byte 16");

  bad = good;
  bad[24 + 6] = 0x7f;  // m at offset 24 overflows the payload size
  expect_rejected_mentioning(bad, "byte 24");

  bad = good;
  for (int i = 0; i < 8; ++i) bad[32 + i] = 0;  // max_weight = 0
  expect_rejected_mentioning(bad, "byte 32");
}

TEST(BGraph, RejectsTruncatedAndOversizedFiles) {
  const std::string good = valid_bytes();
  // Too short for even the header.
  expect_rejected_mentioning(good.substr(0, 20), "");
  // One record byte missing / one extra byte appended: the exact-size
  // check fires before any record is produced.
  expect_rejected_mentioning(good.substr(0, good.size() - 1),
                             "overflows the file");
  expect_rejected_mentioning(good + "x", "size mismatch");
}

TEST(BGraph, RejectsCorruptRecordsWithByteOffsets) {
  const std::string good = valid_bytes();
  const auto record_off = [](std::size_t i) {
    return kBGraphHeaderBytes + i * kBGraphRecordBytes;
  };
  const auto offset_str = [&](std::size_t i) {
    return "byte " + std::to_string(record_off(i));
  };

  // Record 2: u = v (equal endpoints).
  std::string bad = good;
  std::copy_n(&good[record_off(2) + 4], 4, &bad[record_off(2)]);
  expect_rejected_mentioning(bad, offset_str(2));

  // Record 0: v >= n.
  bad = good;
  bad[record_off(0) + 4 + 3] = 0x7f;
  expect_rejected_mentioning(bad, offset_str(0));

  // Record 1: weight 0.
  bad = good;
  for (int i = 0; i < 8; ++i) bad[record_off(1) + 8 + i] = 0;
  expect_rejected_mentioning(bad, offset_str(1));

  // Record 3: weight above the header max_weight.
  bad = good;
  bad[record_off(3) + 8 + 6] = 0x7f;
  expect_rejected_mentioning(bad, offset_str(3));
}

// --- streaming CSR build ----------------------------------------------

TEST(BcsrIo, StreamBuildMatchesInMemoryCsr) {
  const auto g = small_random(19);
  const std::string path = tmp_path("stream.bg");
  write_bgraph(g, path);
  const CsrGraph streamed = csr_from_bgraph(path);
  expect_same_csr(streamed, g.csr());
  // And the kernels agree end to end.
  EXPECT_EQ(dijkstra(streamed, 0), dijkstra(g, 0));
  EXPECT_EQ(eccentricities(streamed), eccentricities(g));
}

TEST(BcsrIo, ParallelBuildByteIdenticalAtWorkerCounts) {
  // Unsorted input (shuffled) and sorted input both shard; the place
  // pass writes disjoint slots, so every worker count reproduces the
  // serial build — and hence the serial bcsr bytes — exactly.
  const auto g = small_random(47);
  const std::string canon = tmp_path("par_canon.bg");
  const std::string shuf = tmp_path("par_shuf.bg");
  write_bgraph(g, canon);
  shuffle_bgraph(canon, shuf, /*seed=*/3);

  // Only the canonical file reproduces g.csr()'s adjacency-row order;
  // a shuffled file's rows follow its record order, so there the
  // serial build of the same file is the golden.
  expect_same_csr(csr_from_bgraph(canon), g.csr());
  for (const std::string& input : {canon, shuf}) {
    const CsrGraph serial = csr_from_bgraph(input);
    const std::string golden_path = tmp_path("par_golden.bcsr");
    write_csr(serial, golden_path);
    const std::string golden = slurp(golden_path);
    for (const unsigned workers : {1u, 2u, 8u}) {
      runtime::ThreadPool pool(workers);
      const CsrGraph sharded = csr_from_bgraph(input, &pool);
      expect_same_csr(sharded, serial);
      const std::string got = tmp_path("par_got.bcsr");
      write_csr(sharded, got);
      EXPECT_EQ(slurp(got), golden) << input << " workers=" << workers;
    }
  }
}

TEST(BcsrIo, WriteReadMapAllAgree) {
  const auto g = small_random(23);
  const std::string path = tmp_path("image.bcsr");
  write_csr(g.csr(), path);

  const CsrGraph copied = read_csr(path);
  EXPECT_FALSE(copied.is_mapped());
  expect_same_csr(copied, g.csr());

  const CsrGraph mapped = map_csr(path);
  EXPECT_TRUE(mapped.is_mapped());
  expect_same_csr(mapped, g.csr());
  EXPECT_EQ(dijkstra(mapped, 3), dijkstra(g, 3));
  EXPECT_EQ(bfs_distances(mapped, 3), bfs_distances(g.csr(), 3));

  // Deterministic bytes: writing the same graph twice is bit-identical
  // (padding lanes are zeroed).
  const std::string path2 = tmp_path("image2.bcsr");
  write_csr(g.csr(), path2);
  EXPECT_EQ(slurp(path), slurp(path2));
}

TEST(BcsrIo, MappedCopiesShareAndReweightDetaches) {
  const auto g = small_random(29);
  const std::string path = tmp_path("detach.bcsr");
  write_csr(g.csr(), path);

  const CsrGraph mapped = map_csr(path);
  const CsrGraph share = mapped;  // copy of a mapped graph shares pages
  EXPECT_TRUE(share.is_mapped());
  EXPECT_EQ(share.halves().data(), mapped.halves().data());

  // assign_reweighted must never write through the read-only mapping —
  // both from a mapped base and on the self path.
  CsrGraph target = map_csr(path);
  target.assign_reweighted(target, [](Weight) { return Weight{7}; });
  EXPECT_FALSE(target.is_mapped());
  for (const auto& h : target.halves()) EXPECT_EQ(h.weight, 7u);
  CsrGraph from_base;
  from_base.assign_reweighted(mapped, [](Weight w) { return w + 1; });
  EXPECT_FALSE(from_base.is_mapped());
  // The source mapping is untouched by either path.
  expect_same_csr(mapped, g.csr());
}

TEST(BcsrIo, MapRejectsCorruptOffsets) {
  const auto g = small_random(31);
  const std::string path = tmp_path("corrupt.bcsr");
  write_csr(g.csr(), path);
  std::string bytes = slurp(path);
  // Break monotonicity of the offsets array (first entry after the
  // 48-byte header must be 0).
  bytes[kBGraphHeaderBytes] = 0x05;
  const std::string bad = tmp_path("corrupt2.bcsr");
  spit(bad, bytes);
  EXPECT_THROW(map_csr(bad), ArgumentError);
  EXPECT_THROW(read_csr(bad), ArgumentError);
}

// --- streaming generators ---------------------------------------------

TEST(StreamingGenerators, SeedDeterministicByteIdenticalFiles) {
  const std::string a = tmp_path("gen_a.bg");
  const std::string b = tmp_path("gen_b.bg");

  gen::rmat_bgraph(a, /*scale=*/10, /*target_edges=*/4096, /*max_w=*/32, 5);
  gen::rmat_bgraph(b, /*scale=*/10, /*target_edges=*/4096, /*max_w=*/32, 5);
  EXPECT_EQ(slurp(a), slurp(b));
  gen::rmat_bgraph(b, 10, 4096, 32, /*seed=*/6);
  EXPECT_NE(slurp(a), slurp(b));

  gen::chung_lu_bgraph(a, /*n=*/1024, /*target_edges=*/4096,
                       /*exponent=*/2.5, /*max_w=*/32, 5);
  gen::chung_lu_bgraph(b, 1024, 4096, 2.5, 32, 5);
  EXPECT_EQ(slurp(a), slurp(b));

  gen::erdos_renyi_bgraph(a, /*n=*/1024, /*p=*/0.01, /*max_w=*/32, 5);
  gen::erdos_renyi_bgraph(b, 1024, 0.01, 32, 5);
  EXPECT_EQ(slurp(a), slurp(b));
}

TEST(StreamingGenerators, OutputsAreCanonicalConnectedAndOnBudget) {
  const std::string path = tmp_path("gen_check.bg");
  const auto check = [&](const BGraphInfo& info, std::uint64_t n,
                         std::uint64_t at_least_m) {
    EXPECT_EQ(info.n, n);
    EXPECT_GE(info.m, at_least_m);  // repair edges may add a few
    // sort_bgraph doubles as the full duplicate-freedom validator.
    const std::string sorted = tmp_path("gen_check_sorted.bg");
    sort_bgraph(path, sorted);
    const WeightedGraph g = load_bgraph(sorted);
    const auto d = bfs_distances(g, 0);
    EXPECT_TRUE(std::none_of(d.begin(), d.end(),
                             [](Dist x) { return x == kInfDist; }))
        << "generator output must be connected";
  };
  check(gen::rmat_bgraph(path, 9, 2048, 16, 77), 512, 2048);
  check(gen::chung_lu_bgraph(path, 700, 2100, 2.3, 16, 77), 700, 2100);
  check(gen::erdos_renyi_bgraph(path, 600, 0.012, 16, 77), 600, 1);

  // RMAT degree skew: the classic parameters concentrate mass on low
  // ids, so the max degree far exceeds the average.
  gen::rmat_bgraph(path, 10, 8192, 16, 3);
  const BGraphSummary s = summarize_bgraph(path);
  EXPECT_GE(s.max_degree, static_cast<std::uint64_t>(4 * s.avg_degree));
}

TEST(StreamingGenerators, GridBgraphIsRoadLikeAndDeterministic) {
  const std::string a = tmp_path("grid_a.bg");
  const std::string b = tmp_path("grid_b.bg");

  const BGraphInfo info =
      gen::grid_bgraph(a, /*rows=*/20, /*cols=*/30, /*diagonal_p=*/0.25,
                       /*max_w=*/9, /*seed=*/5);
  EXPECT_EQ(info.n, 600u);
  EXPECT_TRUE(info.sorted);  // strictly increasing (u, v) emission
  EXPECT_LE(info.max_weight, 9u);
  // Axis edges are always present; diagonals add at most one per cell.
  const std::uint64_t axis = 20u * 29 + 19u * 30;
  EXPECT_GE(info.m, axis);
  EXPECT_LE(info.m, axis + 19u * 29);

  // Seed-deterministic bytes; a different seed moves weights/diagonals.
  gen::grid_bgraph(b, 20, 30, 0.25, 9, 5);
  EXPECT_EQ(slurp(a), slurp(b));
  gen::grid_bgraph(b, 20, 30, 0.25, 9, 6);
  EXPECT_NE(slurp(a), slurp(b));

  // Connected by construction (no repair pass to lean on).
  const WeightedGraph g = load_bgraph(a);
  const auto d = bfs_distances(g, 0);
  EXPECT_TRUE(std::none_of(d.begin(), d.end(),
                           [](Dist x) { return x == kInfDist; }));

  // Degenerate diagonal probabilities pin the edge count exactly.
  EXPECT_EQ(gen::grid_bgraph(a, 4, 5, 0.0, 3, 1).m, 4u * 4 + 3u * 5);
  EXPECT_EQ(gen::grid_bgraph(a, 4, 5, 1.0, 3, 1).m,
            4u * 4 + 3u * 5 + 3u * 4);

  // A 1 x k grid degenerates to a weighted path (D = n - 1 hops).
  const BGraphInfo path_info = gen::grid_bgraph(a, 1, 8, 0.5, 4, 2);
  EXPECT_EQ(path_info.n, 8u);
  EXPECT_EQ(path_info.m, 7u);

  EXPECT_THROW(gen::grid_bgraph(a, 0, 5, 0.1, 3, 1), ArgumentError);
  EXPECT_THROW(gen::grid_bgraph(a, 1, 1, 0.1, 3, 1), ArgumentError);
  EXPECT_THROW(gen::grid_bgraph(a, 4, 5, -0.1, 3, 1), ArgumentError);
  EXPECT_THROW(gen::grid_bgraph(a, 4, 5, 1.5, 3, 1), ArgumentError);
  EXPECT_THROW(gen::grid_bgraph(a, 4, 5, 0.1, 0, 1), ArgumentError);
}

TEST(StreamingGenerators, RejectsInfeasibleParameters) {
  const std::string path = tmp_path("gen_bad.bg");
  // Target above the simple-graph ceiling n(n-1)/2.
  EXPECT_THROW(gen::rmat_bgraph(path, 3, 100, 8, 1), ArgumentError);
  EXPECT_THROW(gen::chung_lu_bgraph(path, 8, 100, 2.5, 8, 1),
               ArgumentError);
  EXPECT_THROW(gen::chung_lu_bgraph(path, 8, 4, /*exponent=*/1.5, 8, 1),
               ArgumentError);
  EXPECT_THROW(gen::erdos_renyi_bgraph(path, 8, 1.5, 8, 1), ArgumentError);
  EXPECT_THROW(gen::erdos_renyi_bgraph(path, 8, 0.5, /*max_w=*/0, 1),
               ArgumentError);
}

// --- the large-n determinism contract (ISSUE 8 acceptance) ------------

// Shared n = 10^5 dataset for the worker-identity tests below: RMAT
// scale 17 (131072 nodes) streamed to disk once, then CSR-built.
class LargeN : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ctest runs each discovered test as its own process, and every
    // process regenerates this suite-shared dataset — pid-suffix the
    // path so concurrent LargeN processes never clobber each other.
    path_ = new std::string(tmp_path("large_n." +
                                     std::to_string(::getpid()) + ".bg"));
    info_ = new BGraphInfo(
        gen::rmat_bgraph(*path_, /*scale=*/17, /*target_edges=*/400000,
                         /*max_w=*/100, /*seed=*/20260808));
    csr_ = new CsrGraph(csr_from_bgraph(*path_));
  }
  static void TearDownTestSuite() {
    delete csr_;
    csr_ = nullptr;
    delete info_;
    info_ = nullptr;
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
  }

  static std::string* path_;
  static BGraphInfo* info_;
  static CsrGraph* csr_;
};

std::string* LargeN::path_ = nullptr;
BGraphInfo* LargeN::info_ = nullptr;
CsrGraph* LargeN::csr_ = nullptr;

TEST_F(LargeN, SampledEccentricitiesByteIdenticalAtWorkerCounts) {
  ASSERT_GE(csr_->node_count(), 100000u);
  // 32 sample sources spread across the id space (RMAT skew means they
  // cover wildly different degrees).
  std::vector<NodeId> sources;
  for (NodeId s = 0; s < csr_->node_count();
       s += csr_->node_count() / 32) {
    sources.push_back(s);
  }
  runtime::ThreadPool one(1);
  const auto golden = eccentricities(*csr_, std::span(sources), &one);
  ASSERT_EQ(golden.size(), sources.size());
  // Connected dataset: every sampled eccentricity is finite.
  EXPECT_TRUE(std::none_of(golden.begin(), golden.end(),
                           [](Dist d) { return d == kInfDist; }));
  for (const unsigned workers : {2u, 8u}) {
    runtime::ThreadPool pool(workers);
    EXPECT_EQ(eccentricities(*csr_, std::span(sources), &pool), golden)
        << "workers=" << workers;
  }
}

TEST_F(LargeN, ParallelCsrBuildByteIdenticalAtScale) {
  // 400k records over up-to-16 shards: the per-shard degree reduce and
  // precomputed place cursors must reproduce the serial CSR exactly.
  for (const unsigned workers : {2u, 8u}) {
    runtime::ThreadPool pool(workers);
    expect_same_csr(csr_from_bgraph(*path_, &pool), *csr_);
  }
}

TEST_F(LargeN, ExternalSortMatchesInMemoryAtScale) {
  // 6.4 MB of records against a 1 MiB budget: seven spill runs through
  // the loser-tree merge, byte-identical to the one-shot sort.
  const std::string mem = tmp_path("large_mem.bg");
  const std::string ext = tmp_path("large_ext.bg");
  sort_bgraph(*path_, mem);
  sort_bgraph(*path_, ext, /*mem_budget_bytes=*/std::uint64_t{1} << 20);
  EXPECT_EQ(slurp(mem), slurp(ext));
  std::remove(mem.c_str());
  std::remove(ext.c_str());
}

// Hop-level flood from a root: each node adopts 1 + the minimum level
// in its first non-empty inbox (synchronous rounds make that the exact
// BFS distance), re-broadcasts once, and goes quiet.
class BfsFloodProgram final : public NodeProgram {
 public:
  explicit BfsFloodProgram(NodeId root) : root_(root) {}
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == root_) {
      level_ = 0;
      Message m;
      m.push(0, 32);
      ctx.broadcast(m);
      sent_ = true;
    }
  }
  void on_round(NodeContext& ctx,
                std::span<const Incoming> inbox) override {
    if (level_ != kInfDist || inbox.empty()) return;
    Dist best = kInfDist;
    for (const Incoming& in : inbox) {
      best = std::min(best, static_cast<Dist>(in.msg.field(0)) + 1);
    }
    level_ = best;
    Message m;
    m.push(level_, 32);
    ctx.broadcast(m);
    sent_ = true;
  }
  bool done() const override { return sent_; }
  Dist level() const { return level_; }

 private:
  NodeId root_ = 0;
  Dist level_ = kInfDist;
  bool sent_ = false;
};

// A BFS flood over the full 10^5-node graph through the sharded merge:
// stats, per-round metrics, and program outputs byte-identical at
// workers 1/2/8. (The trace is left off — recording 10^5 nodes' sends
// would swamp the test — the ledger digest inside RunStats still pins
// every message byte.)
struct FloodCapture {
  RunStats stats;
  std::vector<RoundMetrics> metrics;
  std::vector<Dist> hops;
  friend bool operator==(const FloodCapture&, const FloodCapture&) = default;
};

TEST_F(LargeN, ShardedMergeSimulatorByteIdenticalAtWorkerCounts) {
  const WeightedGraph g = load_bgraph(*path_);
  ASSERT_GE(g.node_count(), 100000u);

  const auto run = [&](unsigned workers) {
    Config cfg;
    cfg.workers = workers;
    cfg.execution.sharded_merge_min_messages = 0;  // force sharded path
    FloodCapture cap;
    cfg.on_round_metrics = [&](const RoundMetrics& rm) {
      cap.metrics.push_back(rm);
    };
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      programs.push_back(std::make_unique<BfsFloodProgram>(/*root=*/0));
    }
    Simulator sim(g, cfg);
    cap.stats = sim.run(programs);
    cap.hops.reserve(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      cap.hops.push_back(
          static_cast<const BfsFloodProgram&>(*programs[v]).level());
    }
    return cap;
  };

  const FloodCapture golden = run(1);
  EXPECT_EQ(golden.hops, bfs_distances(g, 0));
  for (const unsigned workers : {2u, 8u}) {
    EXPECT_EQ(run(workers), golden) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace qc
