// Tests for the executable Server model (lowerbound/protocol.h): the
// transcript accounting, the trivial upper-bound protocol, and the
// constructive Lemma 4.1 three-party simulation.
#include <gtest/gtest.h>

#include "lowerbound/protocol.h"
#include "util/rng.h"

namespace qc::lb {
namespace {

TEST(ServerTranscript, ChargesOnlyAliceAndBob) {
  ServerTranscript t;
  t.record(Owner::kAlice, Owner::kServer, 10);
  t.record(Owner::kBob, Owner::kServer, 5);
  t.record(Owner::kServer, Owner::kAlice, 1000);  // free
  t.record(Owner::kAlice, Owner::kBob, 7);
  EXPECT_EQ(t.charged_bits(), 22u);
  EXPECT_EQ(t.charged_messages(), 3u);
  EXPECT_EQ(t.free_bits(), 1000u);
  EXPECT_EQ(t.total_messages(), 4u);
}

TEST(TrivialProtocol, CostsInputSizeAndComputesF) {
  Rng rng(3);
  const auto p = GadgetParams::paper(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto in = random_input(1ull << p.s, p.ell, rng);
    const auto f = trivial_protocol_for_f(in, false);
    EXPECT_EQ(f.value, eval_f(in));
    EXPECT_EQ(f.charged_bits, in.x.size() + 1);
    const auto fp = trivial_protocol_for_f(in, true);
    EXPECT_EQ(fp.value, eval_f_prime(in));
  }
}

class ThreePartyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreePartyTest, SimulationReproducesMonolithicExecution) {
  Rng rng(GetParam());
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  // Different roots exercise different information flows.
  const NodeId root = GetParam() % 3 == 0   ? g.root()
                      : GetParam() % 3 == 1 ? g.a(0)
                                            : g.b(2);
  const auto run = simulate_congest_in_server_model(g, 5, root);
  EXPECT_TRUE(run.outputs_match);
  EXPECT_TRUE(run.partition_sound);
  EXPECT_TRUE(run.within_budget);
  EXPECT_EQ(run.rounds, 5u);
}

TEST_P(ThreePartyTest, ChargedBitsWellBelowTrivialProtocol) {
  Rng rng(GetParam() + 40);
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  const auto run = simulate_congest_in_server_model(g, 6, g.a(0));
  const auto trivial = trivial_protocol_for_f(in, false);
  // A short CONGEST execution simulates for far less than shipping the
  // whole input — that is why a fast distributed algorithm would give a
  // too-cheap protocol (the reduction's punchline).
  EXPECT_LT(run.transcript.charged_bits(), trivial.charged_bits / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreePartyTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(ThreeParty, RejectsExecutionsBeyondHorizon) {
  Rng rng(9);
  const auto p = GadgetParams::paper(2);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  EXPECT_THROW(simulate_congest_in_server_model(g, 10, g.root()),
               ArgumentError);
}

TEST(ThreeParty, ChargedCountsConsistentWithStandaloneMetering) {
  // The three-party execution and the trace-metering path use slightly
  // offset wave timings (the engine's on_start sends land in round 0,
  // the protocol's root wave lands in round 1), so exact equality is
  // not expected — but both must respect the same Lemma 4.1 per-run
  // ceiling of 2h messages per round.
  Rng rng(11);
  const auto p = GadgetParams::paper(4);
  const auto in = random_input(1ull << p.s, p.ell, rng);
  const Gadget g(p, in, false);
  const auto three_party = simulate_congest_in_server_model(g, 5, g.root());
  const auto metered = run_and_meter_bfs(g, 5, g.root());
  const std::uint64_t ceiling = 2ull * p.h * (5 + 1);
  EXPECT_LE(three_party.transcript.charged_messages(), ceiling);
  EXPECT_LE(metered.charged_messages, ceiling);
  EXPECT_TRUE(three_party.within_budget);
  EXPECT_TRUE(metered.within_bound);
}

}  // namespace
}  // namespace qc::lb
