// Tests for graph serialization (wgraph v1) and leader election.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "congest/primitives.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace qc {
namespace {

TEST(GraphIo, RoundTripsExactly) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    auto g = gen::erdos_renyi_connected(20, 0.2, rng);
    g = gen::randomize_weights(g, 50, rng);
    const auto parsed = parse_edge_list(to_edge_list(g));
    EXPECT_EQ(parsed.node_count(), g.node_count());
    ASSERT_EQ(parsed.edge_count(), g.edge_count());
    EXPECT_EQ(parsed.edges(), g.edges());
  }
}

TEST(GraphIo, AcceptsCommentsAndBlankLines) {
  const auto g = parse_edge_list(
      "# a comment\n\nwgraph 3 2\n0 1 5\n# another\n1 2 1\n\n");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_weight(0, 1), 5u);
  EXPECT_EQ(g.edge_weight(1, 2), 1u);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_edge_list(""), ArgumentError);               // no header
  EXPECT_THROW(parse_edge_list("graph 2 1\n0 1 1\n"), ArgumentError);
  EXPECT_THROW(parse_edge_list("wgraph 2 2\n0 1 1\n"), ArgumentError);
  EXPECT_THROW(parse_edge_list("wgraph 2 1\n0 2 1\n"), ArgumentError);
  EXPECT_THROW(parse_edge_list("wgraph 2 1\n0 1 0\n"), ArgumentError);
  EXPECT_THROW(parse_edge_list("wgraph 2 1\n0 1 1 9\n"), ArgumentError);
  EXPECT_THROW(parse_edge_list("wgraph 3 2\n0 1 1\n1 0 2\n"),
               ArgumentError);  // duplicate edge
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(5);
  auto g = gen::grid(4, 4);
  g = gen::randomize_weights(g, 9, rng);
  const auto path =
      (std::filesystem::temp_directory_path() / "qc_io_test.wg").string();
  save_graph(g, path);
  const auto loaded = load_graph(path);
  EXPECT_EQ(loaded.edges(), g.edges());
  std::filesystem::remove(path);
  EXPECT_THROW(load_graph(path + ".missing"), ArgumentError);
}

class ElectionTest : public ::testing::TestWithParam<int> {};

TEST_P(ElectionTest, AgreesOnMinIdWithinHorizon) {
  Rng rng(70 + GetParam());
  WeightedGraph g = GetParam() % 3 == 0   ? gen::path(17)
                    : GetParam() % 3 == 1 ? gen::star(12)
                                          : gen::erdos_renyi_connected(
                                                20, 0.2, rng);
  const Dist d = unweighted_diameter(g);
  const auto res = congest::elect_leader(g, d + 1);
  EXPECT_EQ(res.leader, 0u);  // min id in a dense id space
  EXPECT_LE(res.stats.rounds, d + 2);
}

INSTANTIATE_TEST_SUITE_P(Cases, ElectionTest, ::testing::Range(0, 6));

TEST(Election, ShortHorizonFailsLoudly) {
  const auto g = gen::path(12);  // D = 11
  EXPECT_THROW(congest::elect_leader(g, 2), InvariantError);
}

TEST(Election, HorizonNIsAlwaysSafe) {
  Rng rng(9);
  const auto g = gen::erdos_renyi_connected(25, 0.08, rng);
  const auto res = congest::elect_leader(g, g.node_count());
  EXPECT_EQ(res.leader, 0u);
}

}  // namespace
}  // namespace qc
