// Randomized cross-validation sweeps ("fuzzing" with fixed seeds):
// every distributed algorithm against its centralized twin on random
// graphs, random weights, and random parameters; plus distributional
// checks of the quantum search engine and robustness of the gadget
// lemmas under non-paper parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <numeric>
#include <string>

#include "congest/primitives.h"
#include "core/approx.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lowerbound/boolfn.h"
#include "lowerbound/server.h"
#include "paths/distributed.h"
#include "paths/reference.h"
#include "quantum/search.h"
#include "util/rng.h"

namespace qc {
namespace {

WeightedGraph random_connected(Rng& rng, NodeId max_n, Weight max_w) {
  const auto n = static_cast<NodeId>(8 + rng.below(max_n - 8));
  const double p = 0.05 + rng.uniform() * 0.3;
  auto g = gen::erdos_renyi_connected(n, p, rng);
  return gen::randomize_weights(g, 1 + rng.below(max_w), rng);
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, GraphInvariants) {
  Rng rng(GetParam() * 7 + 1);
  const auto g = random_connected(rng, 40, 30);
  g.validate();
  // Serialization round trip.
  EXPECT_EQ(parse_edge_list(to_edge_list(g)).edges(), g.edges());
  // Diameter/radius relations.
  const Dist d = weighted_diameter(g);
  const Dist r = weighted_radius(g);
  EXPECT_LE(r, d);
  EXPECT_LE(d, 2 * r);
  // Bounded-hop at n-1 hops is exact.
  for (NodeId s = 0; s < g.node_count(); s += 9) {
    EXPECT_EQ(bounded_hop_distances(g, s, g.node_count() - 1),
              dijkstra(g, s));
  }
  // Contraction sandwich.
  const auto c = contract_unit_edges(g);
  if (c.graph.node_count() >= 2) {
    const Dist dc = weighted_diameter(c.graph);
    EXPECT_LE(dc, d);
    EXPECT_LE(d, dc + g.node_count());
  }
}

TEST_P(FuzzSweep, DistributedPrimitivesAgreeWithReference) {
  Rng rng(GetParam() * 13 + 3);
  const auto g = random_connected(rng, 28, 10);
  const auto root = static_cast<NodeId>(rng.below(g.node_count()));
  // BFS tree depths == BFS distances.
  const auto tree = congest::build_bfs_tree(g, root);
  const auto ref = bfs_distances(g, root);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(tree.nodes[v].depth, ref[v]);
  }
  // Aggregate == std::min/max/sum.
  std::vector<std::uint64_t> inputs(g.node_count());
  for (auto& x : inputs) x = rng.below(1000);
  EXPECT_EQ(congest::global_aggregate(g, root, inputs,
                                      congest::AggregateOp::kMax, 10)
                .value,
            *std::max_element(inputs.begin(), inputs.end()));
  EXPECT_EQ(congest::global_aggregate(g, root, inputs,
                                      congest::AggregateOp::kSum, 16)
                .value,
            std::accumulate(inputs.begin(), inputs.end(), 0ull));
  // Weighted SSSP == Dijkstra.
  const auto sssp = core::distributed_weighted_sssp(g, root);
  EXPECT_EQ(sssp.dist, dijkstra(g, root));
}

TEST_P(FuzzSweep, ToolkitAgreesUnderRandomParameters) {
  Rng rng(GetParam() * 17 + 5);
  const auto g = random_connected(rng, 20, 8);
  // Random (not Eq. 1) hop scales must still agree bit-exactly between
  // the distributed and centralized forms.
  const paths::HopScale hs{1 + rng.below(g.node_count()),
                           static_cast<std::uint32_t>(1 + rng.below(6)),
                           g.max_weight()};
  const auto s = static_cast<NodeId>(rng.below(g.node_count()));
  const auto dist_run = paths::distributed_bounded_hop_sssp(
      g, paths::RunRequest{}.with_source(s).with_scale(hs));
  EXPECT_EQ(dist_run.approx, paths::approx_bounded_hop_from(g, s, hs));
}

TEST_P(FuzzSweep, SkeletonPipelineUnderRandomSets) {
  Rng rng(GetParam() * 19 + 7);
  const auto g = random_connected(rng, 18, 6);
  const auto params =
      paths::Params::make(g.node_count(),
                          std::max<Dist>(1, unweighted_diameter(g)),
                          static_cast<std::uint32_t>(1 + rng.below(5)));
  std::vector<NodeId> set;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (rng.chance(0.3)) set.push_back(v);
  }
  if (set.empty()) set.push_back(0);
  const auto sk = paths::build_skeleton(g, params, set);
  // Lower bound of Lemma 3.3 must hold for every pair regardless of
  // parameter choices.
  const std::uint64_t total = sk.total_scale();
  for (std::uint32_t a = 0; a < sk.size(); ++a) {
    const auto exact = dijkstra(g, sk.members[a]);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const Dist ad = sk.approx_distance(a, v);
      if (ad < kInfDist) {
        EXPECT_GE(ad, total * exact[v]) << "a=" << a << " v=" << v;
      }
    }
  }
}

TEST_P(FuzzSweep, GadgetDichotomyUnderNonPaperParameters) {
  Rng rng(GetParam() * 23 + 11);
  // Any alpha < beta < 3*alpha separates the two cases (with slack for
  // the +n of Lemma 4.3 when measuring the full graph — we use G').
  lb::GadgetParams p;
  p.h = 2;
  p.s = static_cast<std::uint32_t>(2 + rng.below(3));
  p.ell = static_cast<std::uint32_t>(2 + rng.below(3));
  const std::uint64_t n2 = p.node_count() * p.node_count();
  p.alpha = n2;
  p.beta = n2 + 1 + rng.below(2 * n2 - 2);  // in (alpha, 3*alpha)
  const auto in = lb::random_input(1ull << p.s, p.ell, rng);
  const auto check = lb::check_diameter_reduction(p, in, false);
  EXPECT_TRUE(check.gap_respected)
      << "s=" << p.s << " ell=" << p.ell << " beta=" << p.beta;
}

TEST_P(FuzzSweep, AmplifiedMeasureConditionalDistribution) {
  Rng rng(GetParam() * 29 + 13);
  // Within the marked class, outcomes must follow the weights.
  std::vector<double> w{0.1, 0.3, 0.2, 0.4};
  auto marked = [](std::size_t x) { return x == 1 || x == 3; };
  std::map<std::size_t, int> counts;
  int found = 0;
  const int trials = 4000;
  // 0 iterations: the marked mass stays 0.7 (a single Grover step
  // would over-rotate far past pi/2 at this mass).
  for (int i = 0; i < trials; ++i) {
    const auto r = quantum::amplified_measure(w, marked, 0, rng);
    if (r.found) {
      ++found;
      counts[r.index]++;
    }
  }
  ASSERT_GT(found, 500);
  // P(1 | marked) = 0.3/0.7, P(3 | marked) = 0.4/0.7.
  EXPECT_NEAR(double(counts[1]) / found, 0.3 / 0.7, 0.06);
  EXPECT_NEAR(double(counts[3]) / found, 0.4 / 0.7, 0.06);
  EXPECT_EQ(counts.count(0) + counts.count(2), 0u);
}

TEST_P(FuzzSweep, MultiSourceBfsRandomSources) {
  Rng rng(GetParam() * 31 + 17);
  const auto g = random_connected(rng, 26, 4);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (rng.chance(0.25)) sources.push_back(v);
  }
  if (sources.empty()) sources.push_back(0);
  Rng delays(GetParam());
  const auto res = core::distributed_multi_source_bfs(g, sources, delays);
  for (std::size_t a = 0; a < sources.size(); ++a) {
    EXPECT_EQ(res.dist[a], bfs_distances(g, sources[a]));
  }
}

// The bgraph streaming parser under byte mutation: flip a handful of
// random bytes in a valid file and reload. Every outcome must be
// either a clean parse (the flips hit record lanes and produced another
// valid graph) or an ArgumentError — never a crash, hang, or any other
// exception type. Mutations are biased half-and-half between the
// 48-byte header and the record payload.
TEST_P(FuzzSweep, BGraphParserSurvivesByteMutations) {
  Rng rng(GetParam() * 97 + 5);
  const auto g = random_connected(rng, 40, 30);
  const std::string path =
      ::testing::TempDir() + "qc_fuzz_bgraph_" + std::to_string(GetParam());
  write_bgraph(g, path);
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  for (int trial = 0; trial < 64; ++trial) {
    std::string bytes = good;
    const auto flips = 1 + rng.below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::size_t at =
          rng.chance(0.5) ? rng.below(kBGraphHeaderBytes)
                          : static_cast<std::size_t>(rng.below(bytes.size()));
      bytes[at] = static_cast<char>(rng.below(256));
    }
    // Occasionally truncate or extend as well.
    if (rng.chance(0.2)) bytes.resize(rng.below(bytes.size() + 9));
    // A mutated n field can pass header validation yet describe billions
    // of (isolated) nodes; loading such a file is *correct* but would
    // allocate per-node state far beyond what a test should. Skip the
    // loaders for giant-n mutants — header/record validation is already
    // covered by every other mutant.
    std::uint64_t mut_n = 0;
    if (bytes.size() >= 24) {
      for (int i = 7; i >= 0; --i) {
        mut_n = (mut_n << 8) |
                static_cast<unsigned char>(bytes[16 + static_cast<std::size_t>(i)]);
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    if (mut_n > (std::uint64_t{1} << 21)) continue;
    try {
      const WeightedGraph parsed = load_bgraph(path);
      EXPECT_LE(parsed.node_count(), std::uint64_t{1} << 32);
    } catch (const ArgumentError&) {
      // Expected for most mutations.
    }
    try {
      (void)summarize_bgraph(path);
    } catch (const ArgumentError&) {
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace qc
