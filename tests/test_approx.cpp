// Tests for the additional approximation baselines (core/approx.h):
// distributed weighted SSSP, the folklore 2-approximation, pipelined
// multi-source BFS, and the 3/2-approximation of the unweighted
// diameter — plus the ε-override knob on Theorem 1.1.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/approx.h"
#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace qc::core {
namespace {

WeightedGraph wgraph(std::uint64_t seed, NodeId n, Weight w) {
  Rng rng(seed);
  auto g = gen::erdos_renyi_connected(n, 0.12, rng);
  return gen::randomize_weights(g, w, rng);
}

// ---------------------------------------------------------------------
// Weighted SSSP
// ---------------------------------------------------------------------

class WeightedSsspTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedSsspTest, MatchesDijkstraBitExact) {
  const auto g = wgraph(GetParam(), 24, 9);
  for (NodeId s : {NodeId{0}, NodeId{11}, NodeId{23}}) {
    const auto res = distributed_weighted_sssp(g, s);
    EXPECT_EQ(res.dist, dijkstra(g, s)) << "source " << s;
  }
}

TEST_P(WeightedSsspTest, RoundsTrackWeightedEccentricity) {
  const auto g = wgraph(GetParam() + 50, 20, 7);
  const auto res = distributed_weighted_sssp(g, 0);
  const auto exact = dijkstra(g, 0);
  const Dist ecc = *std::max_element(exact.begin(), exact.end());
  EXPECT_GE(res.stats.rounds, ecc);
  EXPECT_LE(res.stats.rounds, ecc + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSsspTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(WeightedSssp, PathWithHeavyEdges) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 7);
  const auto res = distributed_weighted_sssp(g, 0);
  EXPECT_EQ(res.dist, (std::vector<Dist>{0, 5, 6, 13}));
  EXPECT_LE(res.stats.rounds, 16u);
}

// ---------------------------------------------------------------------
// Weighted APSP + classical weighted extremum baselines
// ---------------------------------------------------------------------

class WeightedApspTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedApspTest, MatchesDijkstraForAllPairs) {
  const auto g = wgraph(GetParam() + 400, 18, 6);
  const auto res = distributed_weighted_apsp(g);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    const auto ref = dijkstra(g, s);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(res.dist[v][s], ref[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST_P(WeightedApspTest, RoundsNearLinearForSmallWeights) {
  const auto g = wgraph(GetParam() + 500, 24, 4);
  const auto res = distributed_weighted_apsp(g);
  const auto ecc = eccentricities(g);
  const Dist max_ecc = *std::max_element(ecc.begin(), ecc.end());
  // Token walk ~3n + weighted wave tail + queue drain slack.
  EXPECT_LE(res.stats.rounds, 8u * g.node_count() + 6 * max_ecc + 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedApspTest,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(ClassicalWeighted, DiameterAndRadiusExact) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto g = wgraph(seed + 600, 20, 7);
    EXPECT_EQ(classical_weighted_diameter(g).value, weighted_diameter(g));
    EXPECT_EQ(classical_weighted_radius(g).value, weighted_radius(g));
  }
}

TEST(ClassicalWeighted, HeavyEdgeGraph) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 100);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 0, 1);
  EXPECT_EQ(classical_weighted_diameter(g).value, weighted_diameter(g));
}

// ---------------------------------------------------------------------
// 2-approximation
// ---------------------------------------------------------------------

class TwoApproxTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoApproxTest, BoundsSandwichDiameterAndRadius) {
  const auto g = wgraph(GetParam() + 100, 22, 8);
  const auto res = two_approx_weighted_diameter(g);
  const Dist d = weighted_diameter(g);
  const Dist r = weighted_radius(g);
  EXPECT_GE(res.ecc_leader, r);           // any ecc >= radius
  EXPECT_LE(res.ecc_leader, d);           // any ecc <= diameter
  EXPECT_GE(res.upper_bound, d);          // 2*ecc >= diameter
  EXPECT_LE(res.upper_bound, 2 * d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoApproxTest,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Multi-source BFS
// ---------------------------------------------------------------------

class MultiBfsTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiBfsTest, MatchesBfsOnAllTopologies) {
  Rng rng(200 + GetParam());
  WeightedGraph g = GetParam() % 3 == 0   ? gen::path(22)
                    : GetParam() % 3 == 1 ? gen::grid(5, 5)
                                          : gen::erdos_renyi_connected(
                                                28, 0.12, rng);
  const std::vector<NodeId> sources{0, 3, 7,
                                    static_cast<NodeId>(g.node_count() - 1)};
  Rng delays(GetParam());
  const auto res = distributed_multi_source_bfs(g, sources, delays);
  for (std::size_t a = 0; a < sources.size(); ++a) {
    EXPECT_EQ(res.dist[a], bfs_distances(g, sources[a])) << "a=" << a;
  }
  EXPECT_LE(res.attempts, 3u);
}

TEST_P(MultiBfsTest, RoundsScaleAsSourcesPlusDiameter) {
  Rng rng(300 + GetParam());
  const auto g = gen::erdos_renyi_connected(32, 0.15, rng);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 8; ++v) sources.push_back(v * 4);
  Rng delays(GetParam() + 9);
  const auto res = distributed_multi_source_bfs(g, sources, delays);
  const Dist d = unweighted_diameter(g);
  const std::uint32_t slots = clog2(32);
  // (b*slots delays + 2D cap + overheads) * slots + preamble.
  EXPECT_LE(res.stats.rounds,
            res.attempts * slots * (8 * slots + 2 * d + 4) + 20 * d + 40);
}

INSTANTIATE_TEST_SUITE_P(Cases, MultiBfsTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// 3/2-approximation
// ---------------------------------------------------------------------

struct ThreeHalvesCase {
  int topology;
  std::uint64_t seed;
};

class ThreeHalvesTest : public ::testing::TestWithParam<ThreeHalvesCase> {};

TEST_P(ThreeHalvesTest, EstimateWithinWindow) {
  const auto c = GetParam();
  Rng rng(c.seed);
  WeightedGraph g = c.topology == 0   ? gen::path(40)
                    : c.topology == 1 ? gen::grid(6, 7)
                    : c.topology == 2 ? gen::path_of_cliques(8, 4)
                                      : gen::erdos_renyi_connected(
                                            40, 0.1, rng);
  const auto res = three_halves_unweighted_diameter(g, c.seed);
  EXPECT_LE(res.estimate, res.exact);
  EXPECT_GE(res.estimate, res.exact * 2 / 3)
      << "estimate " << res.estimate << " exact " << res.exact;
  EXPECT_EQ(res.exact, unweighted_diameter(g));
  EXPECT_GE(res.sample_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ThreeHalvesTest,
    ::testing::Values(ThreeHalvesCase{0, 1}, ThreeHalvesCase{0, 2},
                      ThreeHalvesCase{1, 3}, ThreeHalvesCase{1, 4},
                      ThreeHalvesCase{2, 5}, ThreeHalvesCase{2, 6},
                      ThreeHalvesCase{3, 7}, ThreeHalvesCase{3, 8}));

TEST(ThreeHalves, SubLinearRoundsOnLowDiameterGraphs) {
  Rng rng(9);
  const auto g = gen::erdos_renyi_connected(64, 0.12, rng);
  const auto res = three_halves_unweighted_diameter(g, 3);
  // Õ(sqrt(n) + D): generous polylog allowance, but strictly below the
  // Θ(n)-ish cost of exact APSP at this size would be ~6n.
  const Dist d = unweighted_diameter(g);
  const double budget =
      (std::sqrt(64.0) * clog2(64) + 2.0 * d) * clog2(64) * 8;
  EXPECT_LE(static_cast<double>(res.stats.rounds), budget);
}

// ---------------------------------------------------------------------
// Theorem 1.1 ε override
// ---------------------------------------------------------------------

TEST(Theorem11Eps, TighterEpsilonTightensBoundAndCostsMore) {
  Rng rng(4);
  auto g = gen::erdos_renyi_connected(28, 0.15, rng);
  g = gen::randomize_weights(g, 6, rng);

  Theorem11Options loose;
  loose.seed = 11;
  loose.census = true;
  loose.eps_inv = 2;  // eps = 1/2
  const auto a = quantum_weighted_diameter(g, loose);

  Theorem11Options tight = loose;
  tight.eps_inv = 12;  // eps = 1/12
  const auto b = quantum_weighted_diameter(g, tight);

  EXPECT_NEAR(a.epsilon, 0.5, 1e-12);
  EXPECT_NEAR(b.epsilon, 1.0 / 12, 1e-12);
  EXPECT_TRUE(a.within_bound);
  EXPECT_TRUE(b.within_bound);
  // The tighter run must charge more rounds (longer caps, more scales).
  EXPECT_GT(b.rounds, a.rounds);
  // And its realized ratio bound is tighter.
  EXPECT_LT((1 + b.epsilon) * (1 + b.epsilon),
            (1 + a.epsilon) * (1 + a.epsilon));
}

}  // namespace
}  // namespace qc::core
