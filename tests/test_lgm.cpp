// Tests for the Le Gall–Magniez-structured quantum unweighted
// diameter/radius (block search, Õ(√(nD)) rounds) and for the round
// bounds of the toolkit lemmas (Lemmas A.1–A.4) as stated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/approx.h"
#include "core/baselines.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "paths/distributed.h"
#include "paths/params.h"
#include "paths/reference.h"
#include "util/rng.h"

namespace qc::core {
namespace {

class LgmTest : public ::testing::TestWithParam<int> {};

TEST_P(LgmTest, FindsDiameterWithBlockStructure) {
  Rng rng(60 + GetParam());
  WeightedGraph g = GetParam() % 3 == 0   ? gen::grid(5, 8)
                    : GetParam() % 3 == 1 ? gen::path_of_cliques(10, 4)
                                          : gen::erdos_renyi_connected(
                                                40, 0.12, rng);
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto res = lgm_quantum_unweighted_diameter(g, seed);
    hits += res.value == unweighted_diameter(g);
    EXPECT_TRUE(res.distributed_value_matches) << "seed " << seed;
    EXPECT_GE(res.block_count, 1u);
    EXPECT_EQ(res.block_count,
              ceil_div(g.node_count(), res.block_size));
  }
  EXPECT_GE(hits, 7);
}

TEST_P(LgmTest, RadiusVariant) {
  Rng rng(80 + GetParam());
  const auto g = gen::erdos_renyi_connected(36, 0.12, rng);
  const auto ecc = eccentricities(g.unweighted_copy());
  const Dist r = *std::min_element(ecc.begin(), ecc.end());
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    hits += lgm_quantum_unweighted_radius(g, seed).value == r;
  }
  EXPECT_GE(hits, 7);
}

INSTANTIATE_TEST_SUITE_P(Cases, LgmTest, ::testing::Range(0, 4));

TEST(Lgm, EvaluationRoundsScaleWithDiameterNotN) {
  // The point of the block structure: per-call evaluation is Õ(D),
  // not Õ(n) — compare a low-D dense graph against a path.
  Rng rng(5);
  const auto dense = gen::erdos_renyi_connected(64, 0.2, rng);
  const auto path = gen::path(64);
  const auto rd = lgm_quantum_unweighted_diameter(dense, 3);
  const auto rp = lgm_quantum_unweighted_diameter(path, 3);
  const Dist dd = unweighted_diameter(dense);
  const Dist dp = unweighted_diameter(path);
  ASSERT_LT(dd, dp / 4);
  // Per-evaluation cost must be much smaller on the low-D graph.
  EXPECT_LT(rd.eval_rounds * 4, rp.eval_rounds);
  (void)dp;
}

// ---------------------------------------------------------------------
// Round bounds of the toolkit lemmas, as stated in Appendix A.
// ---------------------------------------------------------------------

TEST(LemmaRounds, A1BoundedHopSsspRounds) {
  // Lemma A.1: Õ(ℓ/ε) rounds; our schedule is exactly
  // scale_count · (cap + 2) with cap = (1+2/ε)ℓ.
  Rng rng(1);
  auto g = gen::erdos_renyi_connected(20, 0.15, rng);
  g = gen::randomize_weights(g, 8, rng);
  const paths::HopScale hs{10, 4, g.max_weight()};
  const auto res = paths::distributed_bounded_hop_sssp(
      g, paths::RunRequest{}.with_source(0).with_scale(hs));
  EXPECT_EQ(res.stats.rounds,
            std::uint64_t{hs.scale_count()} * (hs.rounded_cap() + 2));
  // And each node broadcasts at most once per scale: message count is
  // bounded by scales · Σdeg.
  EXPECT_LE(res.stats.messages,
            std::uint64_t{hs.scale_count()} * 2 * g.edge_count());
}

TEST(LemmaRounds, A2MultiSourceRounds) {
  // Lemma A.2: Õ(D + ℓ/ε + |S|). Our schedule costs
  // (max delay + T + 1) windows of ⌈log n⌉ slots plus the delay flood.
  Rng rng(2);
  auto g = gen::erdos_renyi_connected(24, 0.15, rng);
  g = gen::randomize_weights(g, 6, rng);
  const paths::HopScale hs{8, 3, g.max_weight()};
  const std::vector<NodeId> sources{1, 5, 9, 13, 17};
  Rng delays(3);
  const auto res = paths::distributed_multi_source_bhs(
      g,
      paths::RunRequest{}.with_sources(sources).with_scale(hs).with_rng(
          delays));
  const std::uint64_t slots = clog2(24);
  const std::uint64_t t_logical =
      std::uint64_t{hs.scale_count()} * (hs.rounded_cap() + 2);
  const std::uint64_t bound =
      res.attempts *
          ((sources.size() * slots + t_logical + 1) * slots) +
      res.attempts * (unweighted_diameter(g) + sources.size() + 8);
  EXPECT_LE(res.stats.rounds, bound);
}

TEST(LemmaRounds, A3OverlayEmbeddingRounds) {
  // Lemma A.3: O(D + |S|k) — flooding |S|·k overlay edges plus one
  // aggregate.
  Rng rng(4);
  auto g = gen::erdos_renyi_connected(24, 0.15, rng);
  g = gen::randomize_weights(g, 6, rng);
  const auto params = paths::Params::make(24, unweighted_diameter(g));
  const std::vector<NodeId> sources{0, 4, 8, 12, 16, 20};
  const paths::HopScale hs{params.ell, params.eps_inv, g.max_weight()};
  Rng delays(5);
  const auto ms = paths::distributed_multi_source_bhs(
      g,
      paths::RunRequest{}.with_sources(sources).with_scale(hs).with_rng(
          delays));
  const auto emb = paths::distributed_embed_overlay(
      g, ms.approx,
      paths::RunRequest{}.with_sources(sources).with_params(params));
  const Dist d = unweighted_diameter(g);
  const std::uint64_t items = sources.size() * params.k;
  EXPECT_LE(emb.stats.rounds, 6 * d + items + 30);
}

TEST(LemmaRounds, A4OverlaySsspRounds) {
  // Lemma A.4: Õ(|S|/(εk)·D + |S|): per overlay round one O(D)
  // aggregate (+ flood when announcements exist); overlay rounds are
  // scale_count'' · (cap'' + 1).
  Rng rng(6);
  auto g = gen::erdos_renyi_connected(20, 0.18, rng);
  g = gen::randomize_weights(g, 5, rng);
  const auto params = paths::Params::make(20, unweighted_diameter(g));
  const std::vector<NodeId> sources{2, 7, 11, 15};
  const paths::HopScale hs{params.ell, params.eps_inv, g.max_weight()};
  Rng delays(7);
  const auto ms = paths::distributed_multi_source_bhs(
      g,
      paths::RunRequest{}.with_sources(sources).with_scale(hs).with_rng(
          delays));
  const auto emb = paths::distributed_embed_overlay(
      g, ms.approx,
      paths::RunRequest{}.with_sources(sources).with_params(params));
  const auto res = paths::distributed_overlay_sssp(
      g, emb,
      paths::RunRequest{}.with_params(params).with_overlay_source(0));
  const paths::HopScale ohs{params.overlay_ell(sources.size()),
                            params.eps_inv, emb.max_w2};
  const std::uint64_t overlay_rounds =
      std::uint64_t{ohs.scale_count()} * (ohs.rounded_cap() + 1);
  const Dist d = unweighted_diameter(g);
  // Each overlay round costs <= ~2 primitives of <= ~3D+10 rounds.
  EXPECT_LE(res.stats.rounds, overlay_rounds * 2 * (3 * d + 10) + 50);
  EXPECT_GE(res.stats.rounds, overlay_rounds);  // at least the aggregates
}

}  // namespace
}  // namespace qc::core
