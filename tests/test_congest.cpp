// Tests for the CONGEST engine: model enforcement (bandwidth, topology,
// halting), ledger accounting, and the distributed primitives against
// their centralized references.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <utility>

#include "congest/primitives.h"
#include "congest/simulator.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace qc::congest {
namespace {

TEST(Message, FieldAccounting) {
  Message m;
  m.push(5, 3).push(1, 1).push(1023, 10);
  EXPECT_EQ(m.field_count(), 3u);
  EXPECT_EQ(m.field(0), 5u);
  EXPECT_EQ(m.field(2), 1023u);
  EXPECT_EQ(m.field_width(2), 10u);
  EXPECT_EQ(m.bit_size(), 14u);
}

TEST(Message, RejectsOversizedValue) {
  Message m;
  EXPECT_THROW(m.push(8, 3), ArgumentError);   // 8 needs 4 bits
  EXPECT_THROW(m.push(0, 0), ArgumentError);   // zero width
  EXPECT_THROW(m.push(0, 65), ArgumentError);  // too wide
}

TEST(DefaultBandwidth, ScalesWithLogN) {
  EXPECT_EQ(default_bandwidth(2), kBandwidthLogFactor * 1);
  EXPECT_EQ(default_bandwidth(1024), kBandwidthLogFactor * 10);
  EXPECT_EQ(default_bandwidth(1025), kBandwidthLogFactor * 11);
}

// A program that sends one configurable message to a fixed target each
// round for a fixed number of rounds.
class SpamProgram final : public NodeProgram {
 public:
  SpamProgram(NodeId from, NodeId to, std::uint32_t bits_per_msg,
              std::uint32_t msgs_per_round, std::uint64_t rounds)
      : from_(from), to_(to), bits_(bits_per_msg), count_(msgs_per_round),
        rounds_(rounds) {}

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    received_ += inbox.size();
    if (ctx.id() == from_ && round_ < rounds_) {
      for (std::uint32_t i = 0; i < count_; ++i) {
        Message m;
        m.push(1, bits_);
        ctx.send(to_, m);
      }
    }
    ++round_;
  }
  bool done() const override { return round_ >= rounds_ + 1; }

  std::size_t received() const { return received_; }

 private:
  NodeId from_, to_;
  std::uint32_t bits_, count_;
  std::uint64_t rounds_, round_ = 0;
  std::size_t received_ = 0;
};

TEST(Simulator, DeliversMessagesNextRound) {
  const auto g = gen::path(3);
  auto run = run_on_all<SpamProgram>(g, [&](NodeId) {
    return std::make_unique<SpamProgram>(0, 1, 4, 1, 3);
  });
  EXPECT_EQ(run.at(1).received(), 3u);
  EXPECT_EQ(run.at(2).received(), 0u);
  EXPECT_EQ(run.stats.messages, 3u);
  EXPECT_EQ(run.stats.bits, 12u);
}

TEST(Simulator, EnforcesBandwidth) {
  const auto g = gen::path(4);  // B = 8 * 2 = 16 bits
  const std::uint32_t b = default_bandwidth(4);
  // Two messages of just over half the bandwidth each must overflow.
  EXPECT_THROW(
      (run_on_all<SpamProgram>(g,
                               [&](NodeId) {
                                 return std::make_unique<SpamProgram>(
                                     0, 1, b / 2 + 1, 2, 1);
                               })),
      ModelError);
}

TEST(Simulator, AllowsExactlyBandwidth) {
  const auto g = gen::path(4);
  const std::uint32_t b = default_bandwidth(4);
  auto run = run_on_all<SpamProgram>(g, [&](NodeId) {
    return std::make_unique<SpamProgram>(0, 1, b, 1, 2);
  });
  EXPECT_EQ(run.at(1).received(), 2u);
}

TEST(Simulator, RejectsNonNeighborSend) {
  const auto g = gen::path(4);
  EXPECT_THROW(
      (run_on_all<SpamProgram>(g,
                               [&](NodeId) {
                                 return std::make_unique<SpamProgram>(
                                     0, 3, 4, 1, 1);
                               })),
      ModelError);
}

TEST(Simulator, CustomBandwidthOverride) {
  const auto g = gen::path(4);
  Config cfg;
  cfg.bandwidth_bits = 2;
  EXPECT_THROW(
      (run_on_all<SpamProgram>(
          g,
          [&](NodeId) { return std::make_unique<SpamProgram>(0, 1, 3, 1, 1); },
          cfg)),
      ModelError);
}

class NeverDoneProgram final : public NodeProgram {
 public:
  void on_round(NodeContext& ctx, std::span<const Incoming>) override {
    Message m;
    m.push(1, 1);
    ctx.broadcast(m);  // keep traffic alive forever
  }
  bool done() const override { return false; }
};

TEST(Simulator, MaxRoundsGuardsNonTermination) {
  const auto g = gen::path(3);
  Config cfg;
  cfg.max_rounds = 50;
  EXPECT_THROW((run_on_all<NeverDoneProgram>(
                   g, [&](NodeId) { return std::make_unique<NeverDoneProgram>(); },
                   cfg)),
               ModelError);
}

class IdleProgram final : public NodeProgram {
 public:
  void on_round(NodeContext&, std::span<const Incoming>) override {}
  bool done() const override { return true; }
};

TEST(Simulator, ImmediateHaltWhenAllDone) {
  const auto g = gen::path(3);
  auto run = run_on_all<IdleProgram>(
      g, [&](NodeId) { return std::make_unique<IdleProgram>(); });
  EXPECT_EQ(run.stats.rounds, 0u);
  EXPECT_EQ(run.stats.messages, 0u);
}

TEST(Simulator, NodeRngIsDeterministicAcrossRuns) {
  class RngProgram final : public NodeProgram {
   public:
    void on_round(NodeContext& ctx, std::span<const Incoming>) override {
      value_ = ctx.rng().next();
      finished_ = true;
    }
    bool done() const override { return finished_; }
    std::uint64_t value() const { return value_; }

   private:
    bool finished_ = false;
    std::uint64_t value_ = 0;
  };
  const auto g = gen::path(3);
  auto r1 = run_on_all<RngProgram>(
      g, [&](NodeId) { return std::make_unique<RngProgram>(); });
  auto r2 = run_on_all<RngProgram>(
      g, [&](NodeId) { return std::make_unique<RngProgram>(); });
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(r1.at(v).value(), r2.at(v).value());
  }
  EXPECT_NE(r1.at(0).value(), r1.at(1).value());
}

TEST(Simulator, TraceRecordsEveryMessage) {
  const auto g = gen::path(4);
  Config cfg;
  cfg.record_trace = true;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < 4; ++v) {
    programs.push_back(std::make_unique<SpamProgram>(0, 1, 4, 1, 3));
  }
  Simulator sim(g, cfg);
  const auto stats = sim.run(programs);
  EXPECT_EQ(sim.trace().size(), stats.messages);
  std::uint64_t bits = 0;
  for (const auto& e : sim.trace()) {
    EXPECT_EQ(e.from, 0u);
    EXPECT_EQ(e.to, 1u);
    bits += e.bits;
  }
  EXPECT_EQ(bits, stats.bits);
}

// A small broadcast wave: the root floods one token; every node
// re-broadcasts the first time it hears it, then finishes.
class BroadcastOnceProgram final : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      Message m;
      m.push(1, 6);
      ctx.broadcast(m);
      sent_ = true;
    }
  }
  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    if (!sent_ && !inbox.empty()) {
      Message m;
      m.push(1, 6);
      ctx.broadcast(m);
      sent_ = true;
    }
  }
  bool done() const override { return sent_; }

 private:
  bool sent_ = false;
};

TEST(Simulator, TraceMatchesLedgerOnBroadcast) {
  const auto g = gen::grid(3, 4);
  Config cfg;
  cfg.record_trace = true;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<BroadcastOnceProgram>());
  }
  Simulator sim(g, cfg);
  const auto stats = sim.run(programs);
  // One entry per queued message, and the per-entry bits sum to the
  // ledger's total exactly.
  ASSERT_EQ(sim.trace().size(), stats.messages);
  std::uint64_t bits = 0;
  std::uint64_t last_round = 0;
  for (const auto& e : sim.trace()) {
    bits += e.bits;
    EXPECT_GE(e.round, last_round);  // rounds monotone in queue order
    last_round = e.round;
    EXPECT_LT(e.round, stats.rounds + 1);
    EXPECT_TRUE(g.has_edge(e.from, e.to));
  }
  EXPECT_EQ(bits, stats.bits);
  // Every node broadcast exactly once: degree sum = 2|E| messages.
  EXPECT_EQ(stats.messages, 2 * g.edge_count());
}

TEST(Simulator, TraceOffByDefault) {
  const auto g = gen::path(4);
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < 4; ++v) {
    programs.push_back(std::make_unique<SpamProgram>(0, 1, 4, 1, 3));
  }
  Simulator sim(g, {});
  sim.run(programs);
  EXPECT_TRUE(sim.trace().empty());
}

TEST(Simulator, SeedChangesNodeRngStreams) {
  class RngOnce final : public NodeProgram {
   public:
    void on_round(NodeContext& ctx, std::span<const Incoming>) override {
      value_ = ctx.rng().next();
      finished_ = true;
    }
    bool done() const override { return finished_; }
    std::uint64_t value_ = 0;

   private:
    bool finished_ = false;
  };
  const auto g = gen::path(3);
  Config c1;
  c1.seed = 1;
  Config c2;
  c2.seed = 2;
  auto r1 = run_on_all<RngOnce>(
      g, [&](NodeId) { return std::make_unique<RngOnce>(); }, c1);
  auto r2 = run_on_all<RngOnce>(
      g, [&](NodeId) { return std::make_unique<RngOnce>(); }, c2);
  EXPECT_NE(r1.at(0).value_, r2.at(0).value_);
}

// ---------------------------------------------------------------------
// BFS tree
// ---------------------------------------------------------------------

class BfsTreeParamTest
    : public ::testing::TestWithParam<std::pair<int, NodeId>> {};

TEST_P(BfsTreeParamTest, DepthsMatchBfsAndTreeIsConsistent) {
  const auto [kind, root] = GetParam();
  Rng rng(77);
  WeightedGraph g = kind == 0   ? gen::path(17)
                    : kind == 1 ? gen::grid(4, 5)
                    : kind == 2 ? gen::balanced_binary_tree(21)
                                : gen::erdos_renyi_connected(25, 0.12, rng);
  const auto res = build_bfs_tree(g, root);
  const auto ref = bfs_distances(g, root);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(res.nodes[v].depth, ref[v]) << "node " << v;
    if (v == root) {
      EXPECT_EQ(res.nodes[v].parent, kNoParent);
    } else {
      const NodeId p = res.nodes[v].parent;
      ASSERT_NE(p, kNoParent);
      EXPECT_EQ(res.nodes[p].depth + 1, res.nodes[v].depth);
      EXPECT_TRUE(g.has_edge(p, v));
      // v must appear in its parent's child list.
      const auto& ch = res.nodes[p].children;
      EXPECT_NE(std::find(ch.begin(), ch.end(), v), ch.end());
    }
  }
  // O(D) rounds.
  const Dist d = unweighted_diameter(g);
  EXPECT_LE(res.stats.rounds, 2 * d + 4);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, BfsTreeParamTest,
    ::testing::Values(std::pair{0, NodeId{0}}, std::pair{0, NodeId{8}},
                      std::pair{1, NodeId{0}}, std::pair{1, NodeId{19}},
                      std::pair{2, NodeId{0}}, std::pair{2, NodeId{20}},
                      std::pair{3, NodeId{0}}, std::pair{3, NodeId{12}}));

// ---------------------------------------------------------------------
// Global aggregate
// ---------------------------------------------------------------------

TEST(GlobalAggregate, MinMaxSumOnGrid) {
  const auto g = gen::grid(4, 4);
  std::vector<std::uint64_t> inputs(16);
  for (std::size_t i = 0; i < 16; ++i) inputs[i] = (i * 7 + 3) % 23;
  const auto mn = global_aggregate(g, 0, inputs, AggregateOp::kMin, 8);
  const auto mx = global_aggregate(g, 0, inputs, AggregateOp::kMax, 8);
  const auto sm = global_aggregate(g, 0, inputs, AggregateOp::kSum, 12);
  EXPECT_EQ(mn.value, *std::min_element(inputs.begin(), inputs.end()));
  EXPECT_EQ(mx.value, *std::max_element(inputs.begin(), inputs.end()));
  EXPECT_EQ(sm.value, std::accumulate(inputs.begin(), inputs.end(), 0ull));
}

TEST(GlobalAggregate, RoundsLinearInDiameter) {
  const auto g = gen::path(33);
  std::vector<std::uint64_t> inputs(33, 1);
  const auto res = global_aggregate(g, 0, inputs, AggregateOp::kSum, 8);
  EXPECT_EQ(res.value, 33u);
  const Dist d = unweighted_diameter(g);
  EXPECT_LE(res.stats.rounds, 3 * d + 8);
}

TEST(GlobalAggregate, WorksFromNonLeaderRoot) {
  const auto g = gen::path(9);
  std::vector<std::uint64_t> inputs(9, 2);
  const auto res = global_aggregate(g, 4, inputs, AggregateOp::kSum, 8);
  EXPECT_EQ(res.value, 18u);
}

// ---------------------------------------------------------------------
// Pipelined flooding
// ---------------------------------------------------------------------

FloodItem make_item(std::uint64_t id, std::uint64_t payload) {
  FloodItem f;
  f.push(id, 16);
  f.push(payload, 16);
  return f;
}

TEST(Flood, AllItemsReachAllNodes) {
  const auto g = gen::grid(3, 5);
  std::vector<std::vector<FloodItem>> initial(15);
  std::size_t total = 0;
  for (NodeId v = 0; v < 15; v += 3) {
    initial[v].push_back(make_item(v, 100 + v));
    initial[v].push_back(make_item(1000 + v, 200 + v));
    total += 2;
  }
  const auto res = flood_items(g, initial);
  for (NodeId v = 0; v < 15; ++v) {
    EXPECT_EQ(res.items_at[v].size(), total);
    EXPECT_EQ(res.items_at[v], res.items_at[0]);  // identical knowledge
  }
}

TEST(Flood, PipelinesWithinDPlusK) {
  const auto g = gen::path(21);  // D = 20
  const std::size_t k = 12;
  std::vector<std::vector<FloodItem>> initial(21);
  for (std::size_t i = 0; i < k; ++i) {
    initial[0].push_back(make_item(i, i));
  }
  const auto res = flood_items(g, initial);
  const Dist d = unweighted_diameter(g);
  EXPECT_LE(res.stats.rounds, d + k + 3);
  EXPECT_EQ(res.items_at[20].size(), k);
}

TEST(Flood, NoItemsIsFree) {
  const auto g = gen::path(5);
  const auto res = flood_items(g, std::vector<std::vector<FloodItem>>(5));
  EXPECT_EQ(res.stats.rounds, 0u);
}

TEST(Flood, RejectsOversizedItems) {
  const auto g = gen::path(5);
  std::vector<std::vector<FloodItem>> initial(5);
  FloodItem big;
  for (int i = 0; i < 5; ++i) big.push(1, 64);
  initial[0].push_back(big);
  EXPECT_THROW(flood_items(g, initial), ArgumentError);
}

// Relaying dedups by content, so two nodes injecting the same payload
// would silently lose one item. Injection must reject that up front
// (historically it was let through and produced a wrong item count).
TEST(Flood, DuplicatePayloadInjectionFailsLoudly) {
  const auto g = gen::path(9);  // wide enough bandwidth for the items
  std::vector<std::vector<FloodItem>> initial(9);
  initial[0].push_back(make_item(1, 1));
  initial[8].push_back(make_item(1, 1));  // same content elsewhere
  EXPECT_THROW(flood_items(g, initial), AlgorithmFailure);
  try {
    flood_items(g, initial);
  } catch (const AlgorithmFailure& e) {
    EXPECT_NE(std::string(e.what()).find("node 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("node 8"), std::string::npos);
  }
}

// --- fast-path regression tests (see docs/perf.md) --------------------

TEST(Message, SpillsBeyondInlineFields) {
  Message m;
  for (std::uint64_t i = 0; i < 9; ++i) {
    m.push(i, 4 + static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(m.field_count(), 9u);
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(m.field(i), i);
    EXPECT_EQ(m.field_width(i), 4u + static_cast<std::uint32_t>(i));
    bits += 4 + static_cast<std::uint32_t>(i);
  }
  EXPECT_EQ(m.bit_size(), bits);

  Message same;
  for (std::uint64_t i = 0; i < 9; ++i) {
    same.push(i, 4 + static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(m, same);
  Message shorter;
  for (std::uint64_t i = 0; i < 6; ++i) {
    shorter.push(i, 4 + static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(m == shorter);
}

// Spilled messages must survive the outbox -> arena path intact.
TEST(Simulator, DeliversSpilledMessages) {
  const auto g = gen::path(2);
  struct WideSender final : NodeProgram {
    std::vector<std::uint64_t> got;
    void on_start(NodeContext& ctx) override {
      if (ctx.id() != 0) return;
      Message m;
      for (std::uint64_t i = 0; i < 8; ++i) m.push(i, 4);  // 32 bits
      ctx.send(1, m);
    }
    void on_round(NodeContext&, std::span<const Incoming> inbox) override {
      for (const Incoming& in : inbox) {
        for (std::size_t i = 0; i < in.msg.field_count(); ++i) {
          got.push_back(in.msg.field(i));
        }
      }
    }
    bool done() const override { return true; }
  };
  Config cfg;
  cfg.bandwidth_bits = 32;
  auto run = run_on_all<WideSender>(
      g, [&](NodeId) { return std::make_unique<WideSender>(); }, cfg);
  EXPECT_EQ(run.at(1).got,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// The exact error text is part of the model's contract (callers match on
// it) and must agree with has_neighbor — both now answer through the
// same EdgeSlotIndex lookup.
TEST(Simulator, NonNeighborErrorTextMatchesHasNeighbor) {
  const auto g = gen::path(4);
  struct Prober final : NodeProgram {
    bool saw_neighbor = true;
    void on_start(NodeContext& ctx) override {
      if (ctx.id() != 0) return;
      saw_neighbor = ctx.has_neighbor(3);
      Message m;
      m.push(1, 1);
      ctx.send(3, m);
    }
    void on_round(NodeContext&, std::span<const Incoming>) override {}
    bool done() const override { return true; }
  };
  try {
    run_on_all<Prober>(g, [&](NodeId) { return std::make_unique<Prober>(); });
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_STREQ(e.what(), "node 0 tried to message non-neighbour 3");
  }
}

TEST(Simulator, BandwidthOverflowErrorNamesEdgeAndRound) {
  const auto g = gen::path(2);  // B = 8 bits at n = 2
  struct Overflower final : NodeProgram {
    void on_round(NodeContext& ctx, std::span<const Incoming>) override {
      Message m;
      m.push(0, 5);
      ctx.send(1, m);
      ctx.send(1, m);  // 10 > 8
    }
    bool done() const override { return false; }
  };
  try {
    run_on_all<Overflower>(
        g, [&](NodeId) { return std::make_unique<Overflower>(); });
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_STREQ(e.what(),
                 "bandwidth exceeded on edge 0->1: 10 bits > B=8 in round 0");
  }
}

TEST(Simulator, NeighborSlotAndSendToSlot) {
  const auto g = gen::star(4);  // hub 0 with leaves 1..3
  struct SlotSender final : NodeProgram {
    std::vector<std::uint64_t> got;
    void on_start(NodeContext& ctx) override {
      if (ctx.id() != 0) return;
      const auto row = ctx.neighbors();
      for (std::uint32_t s = 0; s < row.size(); ++s) {
        // neighbor_slot must invert the adjacency row.
        EXPECT_EQ(ctx.neighbor_slot(row[s].to), s);
        Message m;
        m.push(row[s].to, 8);
        ctx.send_to_slot(s, m);
      }
      EXPECT_EQ(ctx.neighbor_slot(ctx.id()), EdgeSlotIndex::kNoSlot);
    }
    void on_round(NodeContext&, std::span<const Incoming> inbox) override {
      for (const Incoming& in : inbox) got.push_back(in.msg.field(0));
    }
    bool done() const override { return true; }
  };
  auto run = run_on_all<SlotSender>(
      g, [&](NodeId) { return std::make_unique<SlotSender>(); });
  for (NodeId v = 1; v < 4; ++v) {
    EXPECT_EQ(run.at(v).got, std::vector<std::uint64_t>{v});
  }
}

TEST(Simulator, SendToSlotRejectsOutOfRangeSlot) {
  const auto g = gen::path(2);
  struct BadSlot final : NodeProgram {
    void on_start(NodeContext& ctx) override {
      if (ctx.id() != 0) return;
      Message m;
      m.push(1, 1);
      ctx.send_to_slot(5, m);  // degree is 1
    }
    void on_round(NodeContext&, std::span<const Incoming>) override {}
    bool done() const override { return true; }
  };
  EXPECT_THROW(run_on_all<BadSlot>(
                   g, [&](NodeId) { return std::make_unique<BadSlot>(); }),
               ArgumentError);
}

// Per-round max edge utilization: one 4-bit message on a B=16 edge fills
// a quarter of the cap.
TEST(Simulator, ReportsMaxEdgeUtilization) {
  const auto g = gen::path(2);
  struct OneShot final : NodeProgram {
    void on_start(NodeContext& ctx) override {
      if (ctx.id() != 0) return;
      Message m;
      m.push(1, 4);
      ctx.send(1, m);
    }
    void on_round(NodeContext&, std::span<const Incoming>) override {}
    bool done() const override { return true; }
  };
  Config cfg;
  cfg.bandwidth_bits = 16;
  std::vector<RoundMetrics> metrics;
  cfg.on_round_metrics = [&](const RoundMetrics& rm) {
    metrics.push_back(rm);
  };
  run_on_all<OneShot>(g, [&](NodeId) { return std::make_unique<OneShot>(); },
                      cfg);
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metrics[0].round, 0u);
  EXPECT_EQ(metrics[0].messages, 1u);
  EXPECT_EQ(metrics[0].bits, 4u);
  EXPECT_DOUBLE_EQ(metrics[0].max_edge_utilization, 0.25);
}

// A deterministic multi-round workload for the equivalence tests: flood
// the node id of the minimum-id reachable node, one broadcast per node.
class MinFloodProgram final : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    best_ = ctx.id();
    Message m;
    m.push(best_, 32);
    ctx.broadcast(m);
  }
  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    NodeId improved = best_;
    for (const Incoming& in : inbox) {
      improved = std::min(improved, static_cast<NodeId>(in.msg.field(0)));
    }
    if (improved < best_) {
      best_ = improved;
      Message m;
      m.push(best_, 32);
      ctx.broadcast(m);
      quiet_ = 0;
    } else {
      ++quiet_;
    }
  }
  bool done() const override { return quiet_ >= 1; }
  NodeId best() const { return best_; }

 private:
  NodeId best_ = 0;
  std::uint32_t quiet_ = 0;
};

struct RunCapture {
  RunStats stats;
  std::vector<TraceEntry> trace;
  std::vector<RoundMetrics> metrics;
  std::vector<NodeId> outputs;

  friend bool operator==(const RunCapture&, const RunCapture&) = default;
};

RunCapture run_min_flood(const WeightedGraph& g, unsigned workers,
                         std::size_t sharded_min = Config::Execution{}
                                                       .sharded_merge_min_messages) {
  Config cfg;
  cfg.record_trace = true;
  cfg.workers = workers;
  cfg.execution.sharded_merge_min_messages = sharded_min;
  std::vector<RoundMetrics> metrics;
  cfg.on_round_metrics = [&](const RoundMetrics& rm) {
    metrics.push_back(rm);
  };
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<MinFloodProgram>());
  }
  Simulator sim(g, cfg);
  RunCapture cap;
  cap.stats = sim.run(programs);
  cap.trace = sim.trace();
  cap.metrics = std::move(metrics);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    cap.outputs.push_back(
        static_cast<const MinFloodProgram&>(*programs[v]).best());
  }
  return cap;
}

// The tentpole determinism contract: ledger, trace, per-round metrics,
// and program outputs are byte-identical at any worker count. The
// default sharded_merge_min_messages keeps these small phases on the
// serial merge, so this pins the pooled-rounds + serial-merge path.
TEST(Simulator, SerialAndPooledRunsAreByteIdentical) {
  Rng rng(42);
  const auto g = gen::erdos_renyi_connected(96, 0.08, rng);
  const RunCapture golden = run_min_flood(g, 1);
  EXPECT_TRUE(std::all_of(golden.outputs.begin(), golden.outputs.end(),
                          [](NodeId b) { return b == 0; }));
  EXPECT_FALSE(golden.trace.empty());
  EXPECT_FALSE(golden.metrics.empty());
  for (const unsigned workers : {2u, 8u}) {
    const RunCapture got = run_min_flood(g, workers);
    EXPECT_EQ(got, golden) << "workers=" << workers;
  }
}

// Same contract through the shard-parallel merge (threshold 0 forces
// it for every phase), at worker counts that do not divide n — 97 is
// prime, so every shard cut is ragged and a modular-arithmetic bug in
// the shard boundaries or bucket offsets would surface here.
TEST(Simulator, ShardedMergeByteIdenticalAtAwkwardWorkerCounts) {
  Rng rng(1234);
  const auto g = gen::erdos_renyi_connected(97, 0.07, rng);
  const RunCapture golden = run_min_flood(g, 1);
  EXPECT_FALSE(golden.trace.empty());
  for (const unsigned workers : {3u, 5u, 8u}) {
    const RunCapture got = run_min_flood(g, workers, /*sharded_min=*/0);
    EXPECT_EQ(got, golden) << "workers=" << workers;
  }
}

// pooled_round_min_work trades wall-clock only: forcing every round
// through the pool (0) and forcing every round serial (huge) must give
// byte-identical ledgers, traces, metrics, and outputs at any worker
// count. This is the auto-serial fallback that un-regresses small-round
// phases like alg1's hop-SSSP (docs/perf.md).
TEST(Simulator, PooledRoundMinWorkIsWallClockOnly) {
  Rng rng(777);
  const auto g = gen::erdos_renyi_connected(96, 0.08, rng);
  const auto capture = [&](unsigned workers, std::size_t min_work) {
    Config cfg;
    cfg.record_trace = true;
    cfg.workers = workers;
    cfg.execution.pooled_round_min_work = min_work;
    std::vector<RoundMetrics> metrics;
    cfg.on_round_metrics = [&](const RoundMetrics& rm) {
      metrics.push_back(rm);
    };
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      programs.push_back(std::make_unique<MinFloodProgram>());
    }
    Simulator sim(g, cfg);
    RunCapture cap;
    cap.stats = sim.run(programs);
    cap.trace = sim.trace();
    cap.metrics = std::move(metrics);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      cap.outputs.push_back(
          static_cast<const MinFloodProgram&>(*programs[v]).best());
    }
    return cap;
  };
  const RunCapture golden = capture(1, Config::Execution{}.pooled_round_min_work);
  for (const unsigned workers : {2u, 8u}) {
    EXPECT_EQ(capture(workers, /*min_work=*/0), golden)
        << "always-pooled, workers=" << workers;
    EXPECT_EQ(capture(workers, /*min_work=*/SIZE_MAX), golden)
        << "always-serial, workers=" << workers;
  }
}

// More workers than nodes: n = 3 with an 8-worker pool must clamp to 3
// single-node shards and still agree with serial. (MinFlood's 32-bit
// payloads don't fit a 3-node B, so this uses the 6-bit wave.)
TEST(Simulator, ShardedMergeClampsWhenWorkersExceedNodes) {
  const auto g = gen::path(3);
  const auto capture = [&](unsigned workers, std::size_t sharded_min) {
    Config cfg;
    cfg.record_trace = true;
    cfg.workers = workers;
    cfg.execution.sharded_merge_min_messages = sharded_min;
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      programs.push_back(std::make_unique<BroadcastOnceProgram>());
    }
    Simulator sim(g, cfg);
    const RunStats stats = sim.run(programs);
    return std::pair{stats, sim.trace()};
  };
  const auto golden =
      capture(1, Config::Execution{}.sharded_merge_min_messages);
  EXPECT_EQ(golden.first.messages, 2 * g.edge_count());
  EXPECT_EQ(capture(8, /*sharded_min=*/0), golden);
}

// Sends singles and broadcasts interleaved (single, broadcast, single
// in one activation) and records every receiver's inbox verbatim: the
// sharded merge must reproduce the serial merge's per-receiver
// (sender id, program order) interleave exactly, including where the
// broadcast lands between the two singles.
class InterleaveProgram final : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    const auto row = ctx.neighbors();
    Message first;
    first.push(ctx.id(), 16);
    first.push(0, 2);
    ctx.send_to_slot(0, first);
    Message mid;
    mid.push(ctx.id(), 16);
    mid.push(1, 2);
    ctx.broadcast(mid);
    Message last;
    last.push(ctx.id(), 16);
    last.push(2, 2);
    ctx.send_to_slot(static_cast<std::uint32_t>(row.size() - 1), last);
  }
  void on_round(NodeContext&, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      log.push_back({in.from, static_cast<NodeId>(in.msg.field(0)),
                     static_cast<NodeId>(in.msg.field(1))});
    }
  }
  bool done() const override { return true; }

  std::vector<std::array<NodeId, 3>> log;
};

TEST(Simulator, ShardedMergePreservesSingleBroadcastInterleave) {
  const auto g = gen::star(8);  // hub 0, leaves 1..7: one shard per node
  Config cfg;
  cfg.bandwidth_bits = 64;
  const auto capture = [&](unsigned workers, std::size_t sharded_min) {
    Config c = cfg;
    c.workers = workers;
    c.execution.sharded_merge_min_messages = sharded_min;
    auto run = run_on_all<InterleaveProgram>(
        g, [&](NodeId) { return std::make_unique<InterleaveProgram>(); }, c);
    std::vector<std::vector<std::array<NodeId, 3>>> logs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      logs.push_back(run.at(v).log);
    }
    return logs;
  };
  const auto golden = capture(1, Config::Execution{}.sharded_merge_min_messages);
  // Each leaf's three sends all target the hub; the hub's inbox is the
  // senders in ascending order, each contributing marks 0, 1, 2.
  std::vector<std::array<NodeId, 3>> hub_expected;
  for (NodeId leaf = 1; leaf < 8; ++leaf) {
    for (NodeId mark = 0; mark < 3; ++mark) {
      hub_expected.push_back({leaf, leaf, mark});
    }
  }
  EXPECT_EQ(golden[0], hub_expected);
  for (const unsigned workers : {3u, 8u}) {
    EXPECT_EQ(capture(workers, /*sharded_min=*/0), golden)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace qc::congest
