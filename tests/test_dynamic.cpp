// Tests for the dynamic edge-update subsystem: GraphUpdate batch
// semantics (atomic validation, net effect), remove_edge, the
// delta-aware cache maintenance behind WeightedGraph::apply (CSR patch
// overlay, slot-index row repair, connectivity tri-state), the toolkit
// row-invalidation certificate, the service layer's eccentricity delta
// repair, and the "update" query type end to end — every incremental
// result byte-compared against rebuild-from-scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/theorem11.h"
#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/slot_index.h"
#include "graph/update.h"
#include "paths/reference.h"
#include "runtime/thread_pool.h"
#include "service/query_engine.h"
#include "service/wire.h"
#include "util/error.h"
#include "util/rng.h"

namespace qc {
namespace {

using service::EngineOptions;
using service::GraphContext;
using service::Query;
using service::QueryEngine;
using service::QueryResult;

/// Asserts every derived structure of `g` (adjacency, cached CSR —
/// possibly patched — slot index, connectivity) is byte-identical to a
/// graph rebuilt from scratch off g.edges(). This is the incremental
/// subsystem's whole contract in one predicate.
void expect_matches_fresh(const WeightedGraph& g) {
  const WeightedGraph fresh =
      WeightedGraph::from_edges(g.node_count(), g.edges());
  ASSERT_EQ(g.node_count(), fresh.node_count());
  ASSERT_EQ(g.edge_count(), fresh.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto a = g.neighbors(u);
    const auto b = fresh.neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "adjacency row " << u;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "adjacency row " << u << " slot " << i;
    }
  }
  const CsrGraph& pc = g.csr();  // patched or rebuilt — must not matter
  const CsrGraph fc(fresh);
  ASSERT_EQ(pc.node_count(), fc.node_count());
  ASSERT_EQ(pc.edge_count(), fc.edge_count());
  ASSERT_EQ(pc.max_weight(), fc.max_weight());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto a = pc.neighbors(u);
    const auto b = fc.neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "csr row " << u;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "csr row " << u << " slot " << i;
    }
  }
  const EdgeSlotIndex& si = g.slot_index();
  ASSERT_EQ(si.directed_edge_count(), 2 * g.edge_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto row = pc.neighbors(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      ASSERT_EQ(si.slot(u, row[i].to), i) << "slot (" << u << ", "
                                          << row[i].to << ")";
    }
    ASSERT_EQ(si.slot(u, u), EdgeSlotIndex::kNoSlot);
  }
  ASSERT_EQ(g.is_connected(), fresh.is_connected());
  g.validate();
}

WeightedGraph weighted_family(const std::string& family, NodeId n,
                              Weight max_w, std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraph g = gen::from_family(family, n, 1, rng);
  return gen::randomize_weights(g, max_w, rng);
}

// ---------------------------------------------------------------------------
// GraphUpdate batch semantics

TEST(UpdateBatch, ValidationIsAtomic) {
  WeightedGraph g = weighted_family("ER", 24, 9, 7);
  const auto edges_before = g.edges();
  g.csr();  // warm the caches so a bug would patch them
  g.slot_index();
  const Edge e0 = edges_before.front();
  // Valid insert riding with an invalid reweight: nothing may land.
  GraphUpdate bad;
  bad.insert(e0.u, e0.v == 0 ? 1 : 0, 5);  // may or may not exist...
  bad.reweight(e0.u, e0.v, 0);             // ...but zero weight never flies
  EXPECT_THROW(g.apply(bad), ArgumentError);
  EXPECT_EQ(g.edges(), edges_before);
  expect_matches_fresh(g);

  GraphUpdate oob;
  oob.insert(0, g.node_count(), 1);
  EXPECT_THROW(g.apply(oob), ArgumentError);
  EXPECT_EQ(g.edges(), edges_before);

  GraphUpdate loop;
  loop.insert(3, 3, 1);
  EXPECT_THROW(g.apply(loop), ArgumentError);
  EXPECT_EQ(g.edges(), edges_before);
}

TEST(UpdateBatch, NetEffectCancelsInsertRemove) {
  WeightedGraph g = weighted_family("ER", 20, 5, 11);
  g.csr();
  // Pick a non-edge.
  NodeId a = 0, b = 0;
  for (NodeId u = 0; u < g.node_count() && b == 0; ++u) {
    for (NodeId v = u + 1; v < g.node_count(); ++v) {
      if (!g.has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, b);
  const auto edges_before = g.edges();
  const UpdateStats s = g.apply(GraphUpdate{}.insert(a, b, 3).remove(a, b));
  EXPECT_EQ(s.inserted, 0u);
  EXPECT_EQ(s.removed, 0u);
  EXPECT_FALSE(s.topology_changed);
  EXPECT_EQ(g.edges(), edges_before);
  expect_matches_fresh(g);
}

TEST(UpdateBatch, RemoveThenReinsertReweightsInPlace) {
  WeightedGraph g = weighted_family("ER", 20, 5, 13);
  g.csr();
  const Edge e = g.edges()[g.edges().size() / 2];
  // Row order must be preserved: net effect is an in-place reweight.
  std::vector<NodeId> row_before;
  for (const HalfEdge& h : g.neighbors(e.u)) row_before.push_back(h.to);

  const UpdateStats s =
      g.apply(GraphUpdate{}.remove(e.u, e.v).insert(e.v, e.u, e.weight + 7));
  EXPECT_EQ(s.inserted, 0u);
  EXPECT_EQ(s.removed, 0u);
  EXPECT_EQ(s.reweighted, 1u);
  EXPECT_FALSE(s.topology_changed);
  EXPECT_EQ(g.edge_weight(e.u, e.v), e.weight + 7);
  std::vector<NodeId> row_after;
  for (const HalfEdge& h : g.neighbors(e.u)) row_after.push_back(h.to);
  EXPECT_EQ(row_after, row_before);
  expect_matches_fresh(g);
}

TEST(UpdateBatch, SequentialValidationAgainstIntermediateState) {
  WeightedGraph g(4);
  g.add_edge(0, 1, 2);
  // Insert then reweight the inserted edge: legal in one batch.
  g.apply(GraphUpdate{}.insert(1, 2, 5).reweight(1, 2, 9));
  EXPECT_EQ(g.edge_weight(1, 2), 9u);
  // Insert twice is a parallel edge even though neither exists yet.
  try {
    g.apply(GraphUpdate{}.insert(2, 3, 1).insert(3, 2, 4));
    FAIL() << "expected ArgumentError";
  } catch (const ArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("parallel edges"), std::string::npos);
  }
  // Remove twice: second remove sees the edge already gone.
  try {
    g.apply(GraphUpdate{}.remove(0, 1).remove(0, 1));
    FAIL() << "expected ArgumentError";
  } catch (const ArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("remove_edge: no such edge"),
              std::string::npos);
  }
  EXPECT_TRUE(g.has_edge(0, 1));  // atomicity: the failed batch left it
}

TEST(RemoveEdge, MatchesAddEdgeContract) {
  WeightedGraph g(5);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 4);
  EXPECT_THROW(g.remove_edge(0, 5), ArgumentError);   // out of range
  EXPECT_THROW(g.remove_edge(2, 2), ArgumentError);   // self loop
  EXPECT_THROW(g.remove_edge(0, 2), ArgumentError);   // no such edge
  g.remove_edge(1, 0);  // unordered endpoints name the same edge
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
  expect_matches_fresh(g);
}

// ---------------------------------------------------------------------------
// Randomized incremental-vs-fresh equivalence

/// One randomized op stream against warm caches, checked after every
/// batch. Degree-skewed: endpoints are biased toward low node ids so
/// rows accumulate both growth and shrinkage.
void run_stream(const std::string& family, NodeId n, std::size_t budget,
                std::uint64_t seed) {
  SCOPED_TRACE(family + " n=" + std::to_string(n) +
               " budget=" + std::to_string(budget));
  WeightedGraph g = weighted_family(family, n, 12, seed);
  g.set_csr_patch_budget(budget);
  Rng rng(seed * 97 + 1);
  for (int round = 0; round < 30; ++round) {
    g.csr();  // keep the caches warm so every batch takes the patch path
    g.slot_index();
    g.is_connected();
    GraphUpdate batch;
    const std::size_t ops = 1 + rng.below(6);
    for (std::size_t k = 0; k < ops; ++k) {
      // Degree skew: square the uniform so low ids dominate.
      const auto pick = [&] {
        const double x = rng.uniform();
        return static_cast<NodeId>(x * x * n);
      };
      NodeId u = pick(), v = pick();
      if (u == v) v = (v + 1) % n;
      const std::uint64_t dice = rng.below(10);
      if (g.has_edge(u, v)) {
        if (dice < 6) {
          batch.reweight(u, v, 1 + rng.below(12));
        } else {
          batch.remove(u, v);
        }
      } else if (dice < 8) {
        batch.insert(u, v, 1 + rng.below(12));
      }
    }
    if (batch.empty()) continue;
    try {
      g.apply(batch);
    } catch (const ArgumentError&) {
      // Duplicate touches inside one batch can collide (e.g. remove
      // after remove); the graph must be untouched — verified below.
    }
    expect_matches_fresh(g);
  }
}

TEST(IncrementalEquivalence, RandomizedStreamsCompactAlways) {
  run_stream("ER", 48, 1, 21);
  run_stream("grid", 49, 1, 22);
  run_stream("tree", 40, 1, 23);
}

TEST(IncrementalEquivalence, RandomizedStreamsPatchForever) {
  run_stream("ER", 48, 1u << 20, 31);
  run_stream("grid", 49, 1u << 20, 32);
  run_stream("tree", 40, 1u << 20, 33);
}

// ---------------------------------------------------------------------------
// Connectivity tri-state

TEST(Connectivity, ReweightKeepsVerdict) {
  WeightedGraph g = weighted_family("ER", 16, 6, 41);
  ASSERT_TRUE(g.is_connected());
  ASSERT_TRUE(g.connectivity_cached());
  const Edge e = g.edges().front();
  g.set_edge_weight(e.u, e.v, e.weight + 1);
  EXPECT_TRUE(g.connectivity_cached());
  EXPECT_TRUE(g.is_connected());
}

TEST(Connectivity, TriangleRemovalKeepsConnectedViaCommonNeighbor) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  ASSERT_TRUE(g.is_connected());
  // {0,1} sits on a triangle: endpoints share neighbor 2 after removal.
  g.remove_edge(0, 1);
  EXPECT_TRUE(g.connectivity_cached());
  EXPECT_TRUE(g.is_connected());
}

TEST(Connectivity, BridgeRemovalDowngradesToUnknown) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  ASSERT_TRUE(g.is_connected());
  g.remove_edge(2, 3);  // bridge: no replacement certificate
  EXPECT_FALSE(g.connectivity_cached());
  EXPECT_FALSE(g.is_connected());
}

TEST(Connectivity, InsertOnDisconnectedDowngrades) {
  WeightedGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  ASSERT_FALSE(g.is_connected());
  ASSERT_TRUE(g.connectivity_cached());
  g.add_edge(1, 2);  // could (and does) bridge the components
  EXPECT_FALSE(g.connectivity_cached());
  EXPECT_TRUE(g.is_connected());
}

TEST(Connectivity, RemoveOnDisconnectedKeepsDisconnected) {
  WeightedGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  ASSERT_FALSE(g.is_connected());
  g.remove_edge(0, 1);  // removals can never reconnect anything
  EXPECT_TRUE(g.connectivity_cached());
  EXPECT_FALSE(g.is_connected());
}

// ---------------------------------------------------------------------------
// Toolkit row invalidation (the endpoint certificate is exact)

TEST(Toolkit, InvalidatedCacheMatchesFreshRowsEverywhere) {
  WeightedGraph g = weighted_family("ER", 40, 8, 51);
  ASSERT_TRUE(g.is_connected());
  // Pin max_weight: one untouched heaviest edge keeps the row identity
  // (ℓ, 1/ε, W) stable so rebind_params succeeds after reweights.
  const Edge pin = g.edges().front();
  g.set_edge_weight(pin.u, pin.v, 64);

  paths::ToolkitCache cache(g, core::derive_params(g));
  std::vector<NodeId> all(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) all[u] = u;
  cache.ensure_rows(all);
  ASSERT_EQ(cache.cached_row_count(), g.node_count());

  // Reweight a few edges (not the pin, not to above 64).
  GraphUpdate batch;
  const auto& edges = g.edges();
  for (std::size_t i = 1; i < edges.size() && batch.size() < 4; i += 7) {
    batch.reweight(edges[i].u, edges[i].v, 1 + (edges[i].weight % 8));
  }
  ASSERT_FALSE(batch.empty());
  const std::vector<NodeId> endpoints = batch.endpoints();
  g.apply(batch);

  ASSERT_TRUE(cache.rebind_params(core::derive_params(g)));
  const std::size_t dropped = cache.invalidate_rows(endpoints);
  EXPECT_EQ(cache.cached_row_count(), g.node_count() - dropped);

  // Every row — survivor or rebuilt-on-demand — must equal a cache
  // built from scratch on the mutated graph. Survivors being byte-
  // exact is the Lemma's claim; a false survivor would diverge here.
  paths::ToolkitCache scratch(g, core::derive_params(g));
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(cache.approx_row(u), scratch.approx_row(u)) << "row " << u;
  }
}

// ---------------------------------------------------------------------------
// Service-layer eccentricity delta repair

TEST(GraphContextUpdate, EccDeltaRepairMatchesScratch) {
  runtime::ThreadPool pool(2);
  WeightedGraph base = weighted_family("grid", 64, 8, 61);
  GraphContext ctx("g", WeightedGraph(base));
  const auto ecc0 = ctx.weighted_eccentricities(pool);
  const auto hop0 = ctx.hop_eccentricities(pool);
  ASSERT_EQ(ecc0.size(), base.node_count());

  const Edge e = base.edges()[base.edges().size() / 3];
  GraphUpdate batch;
  batch.reweight(e.u, e.v, e.weight + 5);
  const auto outcome = ctx.apply_update(batch, pool, /*incremental=*/true);
  EXPECT_EQ(outcome.changed_edges, 1u);
  EXPECT_FALSE(outcome.scratch);
  // Reweights never touch hop distances.
  EXPECT_EQ(outcome.hop_rows_recomputed, 0u);

  WeightedGraph fresh(base);
  fresh.set_edge_weight(e.u, e.v, e.weight + 5);
  EXPECT_EQ(ctx.weighted_eccentricities(pool), eccentricities(fresh));
  EXPECT_EQ(ctx.hop_eccentricities(pool), unweighted_eccentricities(fresh));
}

TEST(GraphContextUpdate, TopologyChangeRepairsBothTables) {
  runtime::ThreadPool pool(2);
  WeightedGraph base = weighted_family("ER", 36, 6, 67);
  GraphContext ctx("g", WeightedGraph(base));
  ctx.weighted_eccentricities(pool);
  ctx.hop_eccentricities(pool);

  // Insert a chord and remove a triangle edge in one batch.
  NodeId a = 0, b = 0;
  for (NodeId u = 0; u < base.node_count() && b == 0; ++u) {
    for (NodeId v = u + 1; v < base.node_count(); ++v) {
      if (!base.has_edge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, b);
  GraphUpdate batch;
  batch.insert(a, b, 2);
  const auto outcome = ctx.apply_update(batch, pool, /*incremental=*/true);
  EXPECT_EQ(outcome.changed_edges, 1u);

  WeightedGraph fresh(base);
  fresh.add_edge(a, b, 2);
  EXPECT_EQ(ctx.weighted_eccentricities(pool), eccentricities(fresh));
  EXPECT_EQ(ctx.hop_eccentricities(pool), unweighted_eccentricities(fresh));
}

TEST(GraphContextUpdate, ScratchPolicyDropsWarmState) {
  runtime::ThreadPool pool(2);
  WeightedGraph base = weighted_family("ER", 24, 6, 71);
  GraphContext ctx("g", WeightedGraph(base));
  ctx.weighted_eccentricities(pool);
  ASSERT_TRUE(ctx.warm_state().weighted_ecc);
  const Edge e = base.edges().front();
  GraphUpdate batch;
  batch.reweight(e.u, e.v, e.weight + 1);
  const auto outcome = ctx.apply_update(batch, pool, /*incremental=*/false);
  EXPECT_TRUE(outcome.scratch);
  EXPECT_FALSE(ctx.warm_state().weighted_ecc);
  // Rebuild-on-demand still gives the right answer.
  WeightedGraph fresh(base);
  fresh.set_edge_weight(e.u, e.v, e.weight + 1);
  EXPECT_EQ(ctx.weighted_eccentricities(pool), eccentricities(fresh));
}

// ---------------------------------------------------------------------------
// The "update" query type

std::vector<Query> update_interleave(NodeId n) {
  std::vector<Query> qs;
  std::uint64_t id = 1;
  Rng rng(83);
  const auto push = [&](std::string type, auto fill) {
    Query q;
    q.id = id++;
    q.type = std::move(type);
    fill(q);
    qs.push_back(q);
  };
  for (int round = 0; round < 8; ++round) {
    push("diameter", [](Query&) {});
    push("eccentricity",
         [&](Query& q) { q.node = static_cast<NodeId>(rng.below(n)); });
    push("sssp", [&](Query& q) {
      q.node = static_cast<NodeId>(rng.below(n));
      q.target = static_cast<NodeId>(rng.below(n));
    });
    push("approx_distance", [&](Query& q) {
      q.node = static_cast<NodeId>(rng.below(n));
      q.target = static_cast<NodeId>(rng.below(n));
    });
    push("update", [&](Query& q) {
      q.op = "reweight";
      // Reweights only — stays connected, so every read type answers.
      q.node = 0;
      q.target = 0;
      q.weight = 1 + rng.below(9);
    });
  }
  return qs;
}

/// Fills the reweight targets with actual edges of g (the generator
/// above can't know them).
void bind_updates(std::vector<Query>& qs, const WeightedGraph& g) {
  Rng rng(89);
  for (Query& q : qs) {
    if (q.type != "update") continue;
    const Edge& e = g.edges()[rng.below(g.edges().size())];
    q.node = e.u;
    q.target = e.v;
  }
}

std::string transcript(QueryEngine& engine, const std::vector<Query>& qs) {
  std::string out;
  for (const Query& q : qs) {
    out += service::format_response(engine.query(q));
    out += '\n';
  }
  return out;
}

TEST(ServiceUpdate, IncrementalMatchesScratchAcrossWorkerCounts) {
  const NodeId n = 24;
  WeightedGraph base = weighted_family("ER", n, 9, 91);
  std::vector<Query> qs = update_interleave(n);
  bind_updates(qs, base);

  std::vector<std::string> transcripts;
  for (const unsigned workers : {1u, 2u, 8u}) {
    for (const bool incremental : {true, false}) {
      EngineOptions opt;
      opt.workers = workers;
      opt.auto_dispatch = false;
      opt.incremental_updates = incremental;
      QueryEngine engine(opt);
      engine.add_graph("g0", WeightedGraph(base));
      transcripts.push_back(transcript(engine, qs));
    }
  }
  for (std::size_t i = 1; i < transcripts.size(); ++i) {
    EXPECT_EQ(transcripts[i], transcripts[0]) << "variant " << i;
  }
}

TEST(ServiceUpdate, UpdatesVisibleToSubsequentReads) {
  EngineOptions opt;
  opt.auto_dispatch = false;
  QueryEngine engine(opt);
  WeightedGraph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  engine.add_graph("g0", std::move(g));

  Query d;
  d.type = "diameter";
  EXPECT_EQ(engine.query(d).value, 4u);

  Query u;
  u.type = "update";
  u.op = "insert";
  u.node = 0;
  u.target = 2;
  u.weight = 1;
  const QueryResult ur = engine.query(u);
  ASSERT_TRUE(ur.ok) << ur.error;
  EXPECT_EQ(ur.value, 3u);  // edge count after the op

  EXPECT_EQ(engine.query(d).value, 2u);  // the chord shortcuts 0-2
  Query s;
  s.type = "sssp";
  s.node = 0;
  s.target = 2;
  EXPECT_EQ(engine.query(s).value, 1u);
}

TEST(ServiceUpdate, MutatingQueriesBarrierCoalescingWithinOneBatch) {
  // read / update / read on one graph drained as a single batch: the
  // two reads must NOT coalesce into one pre-update group. The second
  // read was admitted after the update, so it must observe it —
  // admission order is the order reads observe updates in, even
  // inside a batch.
  EngineOptions opt;
  opt.auto_dispatch = false;
  QueryEngine engine(opt);
  WeightedGraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  engine.add_graph("g0", std::move(g));

  const auto read = [&](std::uint64_t id) {
    Query s;
    s.id = id;
    s.type = "sssp";
    s.node = 0;
    s.target = 3;
    return engine.submit(std::move(s));
  };
  const auto update = [&](std::uint64_t id, std::string op, NodeId u,
                          NodeId v, Weight w) {
    Query q;
    q.id = id;
    q.type = "update";
    q.op = std::move(op);
    q.node = u;
    q.target = v;
    q.weight = w;
    return engine.submit(std::move(q));
  };

  auto f1 = read(1);
  auto f2 = update(2, "insert", 0, 3, 1);
  auto f3 = read(3);
  // A second barrier in the same batch: the two updates must not
  // coalesce either (the read between them would observe the remove
  // it was admitted before).
  auto f4 = update(4, "remove", 0, 3, 0);
  auto f5 = read(5);
  while (engine.drain() > 0) {
  }
  EXPECT_EQ(f1.get().value, 3u);  // pre-insert path 0-1-2-3
  ASSERT_TRUE(f2.get().ok);
  EXPECT_EQ(f3.get().value, 1u);  // sees the chord it was admitted after
  ASSERT_TRUE(f4.get().ok);
  EXPECT_EQ(f5.get().value, 3u);  // and the remove is visible again
}

TEST(ServiceUpdate, BatchFallbackGivesPerOpVerdicts) {
  EngineOptions opt;
  opt.auto_dispatch = false;
  QueryEngine engine(opt);
  WeightedGraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 2);
  engine.add_graph("g0", std::move(g));

  // One drain batch: valid insert, duplicate insert (invalid), bogus op
  // string, valid reweight. They group (same graph, same type), the
  // coalesced batch fails validation, and the handler degrades to
  // per-op application.
  std::vector<std::future<QueryResult>> futs;
  const auto submit = [&](std::string op, NodeId u, NodeId v, Weight w) {
    Query q;
    q.id = futs.size() + 1;
    q.type = "update";
    q.op = std::move(op);
    q.node = u;
    q.target = v;
    q.weight = w;
    futs.push_back(engine.submit(std::move(q)));
  };
  submit("insert", 0, 2, 5);
  submit("insert", 2, 0, 5);  // duplicate of the first → parallel edge
  submit("frobnicate", 1, 3, 1);
  submit("reweight", 0, 1, 9);
  while (engine.drain() > 0) {
  }
  const QueryResult r0 = futs[0].get();
  const QueryResult r1 = futs[1].get();
  const QueryResult r2 = futs[2].get();
  const QueryResult r3 = futs[3].get();
  EXPECT_TRUE(r0.ok) << r0.error;
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("parallel edges"), std::string::npos) << r1.error;
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("unknown update op"), std::string::npos);
  EXPECT_TRUE(r3.ok) << r3.error;

  // The valid ops landed despite the batch fallback.
  GraphContext* ctx = engine.find_graph("g0");
  ASSERT_NE(ctx, nullptr);
  EXPECT_TRUE(ctx->graph().has_edge(0, 2));
  EXPECT_EQ(ctx->graph().edge_weight(0, 1), 9u);
}

TEST(ServiceUpdate, T11AnswersTrackUpdates) {
  // The theorem-1.1 handler rides the resident toolkit across updates;
  // its answer after a mutation must equal a fresh engine's on the
  // mutated graph (the cache repair is answer-invisible).
  WeightedGraph base = weighted_family("ER", 16, 6, 97);
  const Edge e = base.edges().front();

  EngineOptions opt;
  opt.auto_dispatch = false;
  QueryEngine live(opt);
  service::register_theorem11_handlers(live);
  live.add_graph("g0", WeightedGraph(base));

  Query t;
  t.type = "t11_diameter";
  t.seed = 5;
  (void)live.query(t);  // warm the toolkit pre-update

  Query u;
  u.type = "update";
  u.op = "reweight";
  u.node = e.u;
  u.target = e.v;
  u.weight = e.weight + 2;
  ASSERT_TRUE(live.query(u).ok);
  const QueryResult after = live.query(t);

  QueryEngine scratch(opt);
  service::register_theorem11_handlers(scratch);
  WeightedGraph mutated(base);
  mutated.set_edge_weight(e.u, e.v, e.weight + 2);
  scratch.add_graph("g0", std::move(mutated));
  const QueryResult expect = scratch.query(t);
  EXPECT_EQ(after, expect);
}

// ---------------------------------------------------------------------------
// Wire keys

TEST(Wire, UpdateRequestKeysParse) {
  const Query q = service::parse_request(
      R"({"id":4,"type":"update","op":"reweight","u":3,"v":9,"w":17})");
  EXPECT_EQ(q.id, 4u);
  EXPECT_EQ(q.type, "update");
  EXPECT_EQ(q.op, "reweight");
  EXPECT_EQ(q.node, 3u);
  EXPECT_EQ(q.target, 9u);
  EXPECT_EQ(q.weight, 17u);
  // Long-form synonyms.
  const Query q2 = service::parse_request(
      R"({"type":"update","op":"insert","node":1,"target":2,"weight":5})");
  EXPECT_EQ(q2.op, "insert");
  EXPECT_EQ(q2.weight, 5u);
  EXPECT_THROW(service::parse_request(R"({"type":"update","ops":"x"})"),
               ArgumentError);
}

}  // namespace
}  // namespace qc
