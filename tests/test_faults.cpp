// Tests for the fault-injection subsystem (congest/faults.h) and the
// redesigned run/config API around it:
//   * empty-plan identity — ledger/trace/metrics/outputs byte-identical
//     to the fault-free fast path, pinned against analytic goldens;
//   * schedule determinism — the same seed produces the same faults,
//     counters, and program outputs at workers = 1/2/8;
//   * per-class explicit events (drop/duplicate/delay/corrupt),
//     link-down intervals, crash-stop failures;
//   * robustness counterparts: acked flooding converging under 10%
//     drop, BFS liveness + diagnosable RunOutcome under crash-stop;
//   * Config sub-struct aliases and paths::RunRequest equivalence;
//   * quantum link faults and the runtime metrics bridge.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "congest/faults.h"
#include "congest/primitives.h"
#include "congest/simulator.h"
#include "graph/generators.h"
#include "paths/distributed.h"
#include "quantum/qnetwork.h"
#include "runtime/metrics.h"
#include "runtime/sweep.h"
#include "util/rng.h"

namespace qc::congest {
namespace {

// ---------------------------------------------------------------------
// Workload programs
// ---------------------------------------------------------------------

// Every node broadcasts its id once at start and is done after the
// first round — the simplest fully deterministic all-edges workload:
// exactly 2|E| messages, all in the start phase, 1 round.
class BroadcastOnceProgram final : public NodeProgram {
 public:
  explicit BroadcastOnceProgram(std::uint32_t id_bits) : id_bits_(id_bits) {}
  void on_start(NodeContext& ctx) override {
    Message m;
    m.push(ctx.id(), id_bits_);
    ctx.broadcast(m);
  }
  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    (void)ctx;
    received_ += inbox.size();
    finished_ = true;
  }
  bool done() const override { return finished_; }
  std::uint64_t received() const { return received_; }

 private:
  std::uint32_t id_bits_;
  std::uint64_t received_ = 0;
  bool finished_ = false;
};

// Min-id flooding until quiescent — the multi-round workload the
// engine determinism tests use; faults perturb it but it always
// terminates (a quiet node only re-wakes on mail).
class MinFloodProgram final : public NodeProgram {
 public:
  void on_start(NodeContext& ctx) override {
    best_ = ctx.id();
    Message m;
    m.push(best_, 32);
    ctx.broadcast(m);
  }
  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    NodeId improved = best_;
    for (const Incoming& in : inbox) {
      improved = std::min(improved, static_cast<NodeId>(in.msg.field(0)));
    }
    if (improved < best_) {
      best_ = improved;
      Message m;
      m.push(best_, 32);
      ctx.broadcast(m);
      quiet_ = 0;
    } else {
      ++quiet_;
    }
  }
  bool done() const override { return quiet_ >= 1; }
  NodeId best() const { return best_; }

 private:
  NodeId best_ = 0;
  std::uint32_t quiet_ = 0;
};

// Fixed-horizon point-to-point prober: `sender` sends the 16-bit
// payloads to `receiver` at start (ordinals 0..k-1 on that edge), and
// optionally one fresh payload (100 + r) in each round r <
// repeat_rounds. Every node stays live `horizon` rounds, so delayed
// deliveries are observed. Records (round, value, bits) per receipt.
class ProbeProgram final : public NodeProgram {
 public:
  struct Receipt {
    std::uint64_t round;
    std::uint64_t value;
    std::uint32_t bits;

    friend bool operator==(const Receipt&, const Receipt&) = default;
  };

  ProbeProgram(NodeId sender, NodeId receiver,
               std::vector<std::uint64_t> payloads, std::uint64_t horizon,
               std::uint64_t repeat_rounds = 0)
      : sender_(sender),
        receiver_(receiver),
        payloads_(std::move(payloads)),
        horizon_(horizon),
        repeat_rounds_(repeat_rounds) {}

  void on_start(NodeContext& ctx) override {
    if (ctx.id() != sender_) return;
    for (const std::uint64_t p : payloads_) {
      Message m;
      m.push(p, 16);
      ctx.send(receiver_, m);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Incoming> inbox) override {
    for (const Incoming& in : inbox) {
      receipts_.push_back(
          Receipt{rounds_, in.msg.field(0), in.msg.bit_size()});
    }
    if (ctx.id() == sender_ && rounds_ < repeat_rounds_) {
      Message m;
      m.push(100 + rounds_, 16);
      ctx.send(receiver_, m);
    }
    ++rounds_;
  }

  bool done() const override { return rounds_ >= horizon_; }
  const std::vector<Receipt>& receipts() const { return receipts_; }

 private:
  NodeId sender_;
  NodeId receiver_;
  std::vector<std::uint64_t> payloads_;
  std::uint64_t horizon_;
  std::uint64_t repeat_rounds_;
  std::uint64_t rounds_ = 0;
  std::vector<Receipt> receipts_;
};

struct RunCapture {
  RunStats stats;
  RunOutcome outcome;
  std::vector<TraceEntry> trace;
  std::vector<RoundMetrics> metrics;
  std::vector<NodeId> outputs;

  friend bool operator==(const RunCapture&, const RunCapture&) = default;
};

RunCapture run_min_flood(const WeightedGraph& g, unsigned workers,
                         FaultPlan plan = {},
                         std::size_t sharded_min = Config::Execution{}
                                                       .sharded_merge_min_messages) {
  Config cfg;
  cfg.record_trace = true;
  cfg.workers = workers;
  cfg.execution.sharded_merge_min_messages = sharded_min;
  cfg.faults = std::move(plan);
  std::vector<RoundMetrics> metrics;
  cfg.on_round_metrics = [&](const RoundMetrics& rm) {
    metrics.push_back(rm);
  };
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<MinFloodProgram>());
  }
  Simulator sim(g, cfg);
  RunCapture cap;
  cap.stats = sim.run(programs);
  cap.outcome = sim.outcome();
  cap.trace = sim.trace();
  cap.metrics = std::move(metrics);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    cap.outputs.push_back(
        static_cast<const MinFloodProgram&>(*programs[v]).best());
  }
  return cap;
}

// Runs the probe workload on a path graph and returns (receiver
// receipts, outcome, stats).
std::tuple<std::vector<ProbeProgram::Receipt>, RunOutcome, RunStats>
run_probe(const WeightedGraph& g, const FaultPlan& plan, NodeId sender,
          NodeId receiver, std::vector<std::uint64_t> payloads,
          std::uint64_t horizon, std::uint64_t repeat_rounds = 0) {
  Config cfg;
  cfg.faults = plan;
  // Tiny probe graphs get a tiny default B; widen it so several 16-bit
  // probes fit one edge-round (the tests meter faults, not bandwidth).
  cfg.bandwidth_bits = 64;
  std::vector<std::unique_ptr<NodeProgram>> programs;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    programs.push_back(std::make_unique<ProbeProgram>(
        sender, receiver, payloads, horizon, repeat_rounds));
  }
  Simulator sim(g, cfg);
  const RunStats stats = sim.run(programs);
  return {static_cast<const ProbeProgram&>(*programs[receiver]).receipts(),
          sim.outcome(), stats};
}

// 7-bit fields keep the acked wire format (1 type bit + item) within
// the default bandwidth even on small graphs: 2 * (14 + 1) = 30 bits
// fits B = 32 at n = 16.
FloodItem make_item(std::uint64_t id, std::uint64_t payload) {
  FloodItem item;
  item.push(id, 7);
  item.push(payload, 7);
  return item;
}

// ---------------------------------------------------------------------
// Empty-plan identity (the acceptance-criteria pin)
// ---------------------------------------------------------------------

// Analytic goldens for the one-shot broadcast workload: an empty fault
// plan must reproduce the fault-free engine bit for bit at any worker
// count. These constants pin the pre-fault-subsystem behaviour: path(6)
// has 5 edges = 10 directed sends of 8 bits, one executed round.
TEST(EmptyPlan, MatchesAnalyticGoldensAtAnyWorkerCount) {
  const auto g = gen::path(6);
  for (const unsigned workers : {1u, 2u, 8u}) {
    Config cfg;
    cfg.workers = workers;
    cfg.record_trace = true;
    cfg.faults = FaultPlan{};  // explicitly installed, still empty
    std::vector<std::unique_ptr<NodeProgram>> programs;
    for (NodeId v = 0; v < 6; ++v) {
      programs.push_back(std::make_unique<BroadcastOnceProgram>(8));
    }
    Simulator sim(g, cfg);
    const RunStats stats = sim.run(programs);
    EXPECT_EQ(stats.rounds, 1u) << "workers=" << workers;
    EXPECT_EQ(stats.messages, 10u) << "workers=" << workers;
    EXPECT_EQ(stats.bits, 80u) << "workers=" << workers;
    EXPECT_EQ(sim.trace().size(), 10u) << "workers=" << workers;
    for (const TraceEntry& t : sim.trace()) EXPECT_EQ(t.round, 0u);
    EXPECT_EQ(sim.fault_counters(), FaultCounters{}) << "workers=" << workers;
    const RunOutcome outcome = sim.outcome();
    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.faults.total(), 0u);
    // Endpoints received their 1 neighbour's id, inner nodes 2.
    for (NodeId v = 0; v < 6; ++v) {
      const auto& p = static_cast<const BroadcastOnceProgram&>(*programs[v]);
      EXPECT_EQ(p.received(), (v == 0 || v == 5) ? 1u : 2u);
    }
  }
}

// Ledger, trace, metrics, and outputs of a multi-round workload with an
// (explicitly installed) empty plan are byte-identical to a config that
// never mentions faults, at every worker count.
TEST(EmptyPlan, IsByteIdenticalToFaultFreeConfig) {
  Rng rng(42);
  const auto g = gen::erdos_renyi_connected(64, 0.1, rng);
  const RunCapture golden = run_min_flood(g, 1);
  for (const unsigned workers : {1u, 2u, 8u}) {
    const RunCapture with_empty_plan = run_min_flood(g, workers, FaultPlan{});
    EXPECT_EQ(with_empty_plan, golden) << "workers=" << workers;
  }
}

// ---------------------------------------------------------------------
// Schedule determinism
// ---------------------------------------------------------------------

TEST(FaultDeterminism, SameSeedSameFaultsAtAnyWorkerCount) {
  Rng rng(7);
  const auto g = gen::erdos_renyi_connected(48, 0.12, rng);
  FaultPlan plan;
  plan.seed = 0xfeedface;
  plan.probabilities.drop = 0.10;
  plan.probabilities.duplicate = 0.05;
  plan.probabilities.delay = 0.05;
  plan.probabilities.delay_rounds = 2;
  plan.probabilities.corrupt = 0.05;
  const RunCapture golden = run_min_flood(g, 1, plan);
  // The plan actually fired (otherwise this test pins nothing).
  EXPECT_GT(golden.outcome.faults.dropped, 0u);
  EXPECT_GT(golden.outcome.faults.duplicated, 0u);
  EXPECT_GT(golden.outcome.faults.delayed, 0u);
  EXPECT_GT(golden.outcome.faults.corrupted, 0u);
  for (const unsigned workers : {2u, 8u}) {
    EXPECT_EQ(run_min_flood(g, workers, plan), golden)
        << "workers=" << workers;
  }
}

// The faulted merge stays serial — fault resolution order is part of
// its determinism contract — but it now shares the sharded merge's
// placement pass. Forcing the sharding knob on (threshold 0) in a
// faulted pooled run must change nothing: the knob only reroutes
// fault-free merges.
TEST(FaultDeterminism, ShardingKnobDoesNotPerturbFaultedRuns) {
  Rng rng(9);
  const auto g = gen::erdos_renyi_connected(48, 0.12, rng);
  FaultPlan plan;
  plan.seed = 0xabad1dea;
  plan.probabilities.drop = 0.10;
  plan.probabilities.delay = 0.05;
  const RunCapture golden = run_min_flood(g, 1, plan);
  EXPECT_GT(golden.outcome.faults.total(), 0u);
  for (const unsigned workers : {1u, 8u}) {
    EXPECT_EQ(run_min_flood(g, workers, plan, /*sharded_min=*/0), golden)
        << "workers=" << workers;
  }
  // And the same graph + knob without a plan routes through the sharded
  // merge: fault-free results must still match their own serial golden.
  const RunCapture free_golden = run_min_flood(g, 1);
  EXPECT_EQ(run_min_flood(g, 8, FaultPlan{}, /*sharded_min=*/0), free_golden);
}

TEST(FaultDeterminism, DifferentSeedsDifferentSchedules) {
  Rng rng(7);
  const auto g = gen::erdos_renyi_connected(48, 0.12, rng);
  FaultPlan a;
  a.seed = 1;
  a.probabilities.drop = 0.2;
  FaultPlan b = a;
  b.seed = 2;
  EXPECT_NE(run_min_flood(g, 1, a).outcome.faults,
            run_min_flood(g, 1, b).outcome.faults);
}

// ---------------------------------------------------------------------
// Explicit per-message events
// ---------------------------------------------------------------------

TEST(FaultEvents, DropDestroysDeliveryButBillsBandwidth) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.events.push_back(FaultEvent{0, 0, 1, 0, FaultKind::kDrop, 1, 0, 1});
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 4);
  EXPECT_TRUE(receipts.empty());
  EXPECT_EQ(outcome.faults.dropped, 1u);
  EXPECT_EQ(stats.messages, 1u);  // the attempt is still on the ledger
  EXPECT_EQ(stats.bits, 16u);
}

TEST(FaultEvents, DuplicateDeliversTwoCopies) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.events.push_back(
      FaultEvent{0, 0, 1, 0, FaultKind::kDuplicate, 1, 0, 1});
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 4);
  ASSERT_EQ(receipts.size(), 2u);
  EXPECT_EQ(receipts[0], (ProbeProgram::Receipt{0, 7, 16}));
  EXPECT_EQ(receipts[1], (ProbeProgram::Receipt{0, 7, 16}));
  EXPECT_EQ(outcome.faults.duplicated, 1u);
  EXPECT_EQ(stats.messages, 1u);  // one send, two deliveries
}

TEST(FaultEvents, DelayShiftsDeliveryRound) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.events.push_back(FaultEvent{0, 0, 1, 0, FaultKind::kDelay, 3, 0, 1});
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 8);
  ASSERT_EQ(receipts.size(), 1u);
  // Normal delivery round 0, +3 rounds in flight.
  EXPECT_EQ(receipts[0], (ProbeProgram::Receipt{3, 7, 16}));
  EXPECT_EQ(outcome.faults.delayed, 1u);
}

TEST(FaultEvents, CorruptFlipsMaskedBitsAndPreservesSize) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.events.push_back(
      FaultEvent{0, 0, 1, 0, FaultKind::kCorrupt, 1, 0, 0b101});
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 4);
  ASSERT_EQ(receipts.size(), 1u);
  EXPECT_EQ(receipts[0].value, 7u ^ 0b101u);
  EXPECT_EQ(receipts[0].bits, 16u);  // widths survive corruption
  EXPECT_EQ(outcome.faults.corrupted, 1u);
}

TEST(FaultEvents, OrdinalSelectsWithinRound) {
  const auto g = gen::path(2);
  // 3 payloads queued the same round: drop only the middle one.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{0, 0, 1, 1, FaultKind::kDrop, 1, 0, 1});
  const auto [receipts, outcome, stats] =
      run_probe(g, plan, 0, 1, {5, 6, 7}, 4);
  ASSERT_EQ(receipts.size(), 2u);
  EXPECT_EQ(receipts[0].value, 5u);
  EXPECT_EQ(receipts[1].value, 7u);
  EXPECT_EQ(outcome.faults.dropped, 1u);
}

TEST(FaultEvents, ValidationRejectsBadPlans) {
  const auto g = gen::path(3);
  const auto make_sim = [&](const FaultPlan& plan) {
    Config cfg;
    cfg.faults = plan;
    return std::make_unique<Simulator>(g, cfg);
  };
  FaultPlan bad_prob;
  bad_prob.probabilities.drop = 1.5;
  EXPECT_THROW(make_sim(bad_prob), ArgumentError);
  FaultPlan non_edge;
  non_edge.events.push_back(FaultEvent{0, 0, 2, 0, FaultKind::kDrop, 1, 0, 1});
  EXPECT_THROW(make_sim(non_edge), ArgumentError);
  FaultPlan bad_crash;
  bad_crash.crashes.push_back(CrashEvent{9, 0});
  EXPECT_THROW(make_sim(bad_crash), ArgumentError);
  FaultPlan bad_interval;
  bad_interval.link_down.push_back(LinkDownInterval{0, 1, 5, 2, true});
  EXPECT_THROW(make_sim(bad_interval), ArgumentError);
}

// ---------------------------------------------------------------------
// Link-down intervals
// ---------------------------------------------------------------------

TEST(LinkDown, DestroysDeliveriesInsideTheInterval) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.link_down.push_back(LinkDownInterval{0, 1, 1, 3, true});
  // Start send (delivery 0) + sends in rounds 0..5 (deliveries 1..6);
  // deliveries 1-3 are destroyed.
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 9, 6);
  ASSERT_EQ(receipts.size(), 4u);
  EXPECT_EQ(receipts[0].round, 0u);
  EXPECT_EQ(receipts[1].round, 4u);
  EXPECT_EQ(receipts[2].round, 5u);
  EXPECT_EQ(receipts[3].round, 6u);
  EXPECT_EQ(outcome.faults.link_down_drops, 3u);
  EXPECT_EQ(stats.messages, 7u);  // every attempt billed
}

TEST(LinkDown, AsymmetricIntervalOnlyKillsOneDirection) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.link_down.push_back(LinkDownInterval{1, 0, 0, 50, false});  // 1->0 only
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 4);
  ASSERT_EQ(receipts.size(), 1u);  // 0->1 unaffected
  EXPECT_EQ(outcome.faults.link_down_drops, 0u);
}

// ---------------------------------------------------------------------
// Crash-stop failures
// ---------------------------------------------------------------------

TEST(CrashStop, MidBfsSurfacesDiagnosableOutcome) {
  const auto g = gen::path(8);
  Config cfg;
  cfg.faults.crashes.push_back(CrashEvent{3, 2});
  const BfsTreeResult res = build_bfs_tree(g, 0, cfg);
  EXPECT_FALSE(res.outcome.completed);
  EXPECT_NE(res.outcome.diagnostic.find("unreached"), std::string::npos);
  EXPECT_EQ(res.outcome.faults.crashed_nodes, 1u);
  // Node 3 crashes at round 2, exactly when depth-3 announcements reach
  // it: the tree is cut there and everything behind it stays unreached.
  EXPECT_EQ(res.unreached, (std::vector<NodeId>{3, 4, 5, 6, 7}));
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(res.nodes[v].depth, static_cast<Dist>(v));
  }
  // Liveness: the unreached side gave up at the internal horizon instead
  // of spinning to Config::max_rounds.
  EXPECT_LE(res.stats.rounds, 2 * g.node_count() + 3);
}

TEST(CrashStop, FaultFreeBfsStillCompletes) {
  const auto g = gen::balanced_binary_tree(15);
  const BfsTreeResult res = build_bfs_tree(g, 0);
  EXPECT_TRUE(res.outcome.completed);
  EXPECT_TRUE(res.outcome.diagnostic.empty());
  EXPECT_TRUE(res.unreached.empty());
}

TEST(CrashStop, CrashedNodeStopsSendingAndReceiving) {
  const auto g = gen::path(2);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 2});
  // Sender keeps sending rounds 0..5; deliveries at rounds >= 2 are
  // destroyed by the receiver's crash.
  const auto [receipts, outcome, stats] = run_probe(g, plan, 0, 1, {7}, 8, 6);
  ASSERT_EQ(receipts.size(), 2u);  // deliveries at rounds 0 and 1 only
  EXPECT_EQ(outcome.faults.crashed_nodes, 1u);
  EXPECT_EQ(outcome.faults.crash_drops, 5u);
}

// ---------------------------------------------------------------------
// Acked flooding
// ---------------------------------------------------------------------

TEST(ReliableFlood, MatchesPlainFloodFaultFree) {
  Rng rng(11);
  const auto g = gen::erdos_renyi_connected(20, 0.2, rng);
  std::vector<std::vector<FloodItem>> initial(g.node_count());
  initial[0].push_back(make_item(1, 100));
  initial[5].push_back(make_item(2, 101));
  initial[12].push_back(make_item(3, 102));
  const auto plain = flood_items(g, initial);
  const auto acked = flood_items_reliable(g, initial);
  EXPECT_TRUE(acked.outcome.completed);
  EXPECT_EQ(acked.outcome.faults.total(), 0u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(acked.items_at[v], plain.items_at[v]) << "node " << v;
  }
}

TEST(ReliableFlood, ConvergesUnderTenPercentDrop) {
  Rng rng(11);
  const auto g = gen::erdos_renyi_connected(20, 0.2, rng);
  std::vector<std::vector<FloodItem>> initial(g.node_count());
  initial[0].push_back(make_item(1, 100));
  initial[5].push_back(make_item(2, 101));
  initial[12].push_back(make_item(3, 102));
  const auto expected = flood_items(g, initial).items_at;

  Config cfg;
  cfg.faults.seed = 99;
  cfg.faults.probabilities.drop = 0.10;
  const auto acked = flood_items_reliable(g, initial, 8, cfg);
  EXPECT_GT(acked.outcome.faults.dropped, 0u);  // faults actually hit
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(acked.items_at[v], expected[v]) << "node " << v;
  }
}

TEST(ReliableFlood, DropScheduleIsDeterministicAcrossWorkers) {
  Rng rng(13);
  const auto g = gen::erdos_renyi_connected(16, 0.25, rng);
  std::vector<std::vector<FloodItem>> initial(g.node_count());
  initial[2].push_back(make_item(1, 100));
  initial[9].push_back(make_item(2, 101));
  const auto run = [&](unsigned workers) {
    Config cfg;
    cfg.workers = workers;
    cfg.faults.seed = 4242;
    cfg.faults.probabilities.drop = 0.10;
    cfg.faults.probabilities.delay = 0.05;
    return flood_items_reliable(g, initial, 4, cfg);
  };
  const auto golden = run(1);
  EXPECT_GT(golden.outcome.faults.total(), 0u);
  for (const unsigned workers : {2u, 8u}) {
    const auto got = run(workers);
    EXPECT_EQ(got.outcome, golden.outcome) << "workers=" << workers;
    EXPECT_EQ(got.items_at, golden.items_at) << "workers=" << workers;
  }
}

TEST(ReliableFlood, RejectsDuplicatePayloads) {
  const auto g = gen::path(16);
  std::vector<std::vector<FloodItem>> initial(16);
  initial[1].push_back(make_item(1, 100));
  initial[13].push_back(make_item(1, 100));
  EXPECT_THROW(flood_items_reliable(g, initial), AlgorithmFailure);
}

// ---------------------------------------------------------------------
// Config sub-structs and aliases
// ---------------------------------------------------------------------

TEST(ConfigApi, AliasesShareStorageWithSubStructs) {
  Config cfg;
  cfg.workers = 4;  // legacy flat spelling
  EXPECT_EQ(cfg.execution.workers, 4u);
  cfg.execution.max_rounds = 123;  // grouped spelling
  EXPECT_EQ(cfg.max_rounds, 123u);
  cfg.record_trace = true;
  EXPECT_TRUE(cfg.hooks.record_trace);
  bool fired = false;
  cfg.on_round_metrics = [&](const RoundMetrics&) { fired = true; };
  ASSERT_TRUE(static_cast<bool>(cfg.hooks.on_round_metrics));
  cfg.hooks.on_round_metrics(RoundMetrics{});
  EXPECT_TRUE(fired);
}

TEST(ConfigApi, CopiesRebindAliasesToTheirOwnStorage) {
  Config a;
  a.workers = 3;
  a.max_rounds = 99;
  Config b = a;  // must not alias a's storage
  b.workers = 7;
  EXPECT_EQ(a.workers, 3u);
  EXPECT_EQ(a.execution.workers, 3u);
  EXPECT_EQ(b.execution.workers, 7u);
  EXPECT_EQ(b.max_rounds, 99u);
  Config c;
  c = b;  // copy-assignment too
  c.execution.workers = 9;
  EXPECT_EQ(b.workers, 7u);
  EXPECT_EQ(c.workers, 9u);
}

// ---------------------------------------------------------------------
// paths::RunRequest
// ---------------------------------------------------------------------

// An explicit weight_of must agree with the empty (= identity) default
// through the request object. (The legacy positional signatures these
// used to compare against are gone — RunRequest is the only surface.)
TEST(RunRequestApi, ExplicitIdentityWeightMatchesDefault) {
  Rng rng(6);
  const auto g =
      gen::randomize_weights(gen::erdos_renyi_connected(24, 0.15, rng), 4, rng);
  const auto weight_of = [](Weight w) { return static_cast<std::uint64_t>(w); };
  const auto explicit_id = paths::distributed_bounded_distance_sssp(
      g, paths::RunRequest{}.with_source(0).with_cap(40).with_weight_of(
             weight_of));
  const auto defaulted = paths::distributed_bounded_distance_sssp(
      g, paths::RunRequest{}.with_source(0).with_cap(40));
  EXPECT_EQ(explicit_id.stats, defaulted.stats);
  EXPECT_EQ(explicit_id.dist, defaulted.dist);
}

TEST(RunRequestApi, MissingRequiredFieldsFailLoudly) {
  const auto g = gen::path(4);
  // Algorithm 3 without an rng, Algorithms 4/5 without params.
  EXPECT_THROW(paths::distributed_multi_source_bhs(
                   g, paths::RunRequest{}.with_sources({0})),
               ArgumentError);
  EXPECT_THROW(
      paths::distributed_embed_overlay(g, {}, paths::RunRequest{}),
      ArgumentError);
}

TEST(RunRequestApi, CarriesFaultPlanIntoTheEngine) {
  const auto g = gen::path(6);
  FaultPlan plan;
  plan.probabilities.drop = 0.3;
  plan.seed = 3;
  // Drops perturb the SSSP ledger relative to fault-free — proof the
  // plan reached the engine through the request.
  const auto clean = paths::distributed_bounded_distance_sssp(
      g, paths::RunRequest{}.with_source(0).with_cap(10));
  const auto faulted = paths::distributed_bounded_distance_sssp(
      g, paths::RunRequest{}.with_source(0).with_cap(10).with_faults(plan));
  EXPECT_NE(faulted.stats, clean.stats);
}

// ---------------------------------------------------------------------
// Quantum link faults
// ---------------------------------------------------------------------

TEST(QuantumFaults, DownedLinkRejectsQubitTransfer) {
  quantum::QuantumNetwork net(gen::path(2), 1);
  net.set_link_faults({LinkDownInterval{0, 1, 0, 1, true}});
  EXPECT_THROW(net.send_qubit(0, 1, 0), ModelError);
  net.end_round();  // round 1: still down
  EXPECT_THROW(net.send_qubit(0, 1, 0), ModelError);
  net.end_round();  // round 2: back up
  net.send_qubit(0, 1, 0);
  net.end_round();
  EXPECT_EQ(net.owner(0), 1u);
}

TEST(QuantumFaults, ValidationRejectsNonEdges) {
  quantum::QuantumNetwork net(gen::path(3), 1);
  EXPECT_THROW(net.set_link_faults({LinkDownInterval{0, 2, 0, 1, true}}),
               ArgumentError);
}

// ---------------------------------------------------------------------
// Metrics bridge
// ---------------------------------------------------------------------

TEST(FaultMetrics, RecordIntoRegistry) {
  FaultCounters c;
  c.dropped = 3;
  c.delayed = 2;
  c.crashed_nodes = 1;
  runtime::MetricsRegistry registry;
  runtime::record_fault_metrics(c, registry);
  EXPECT_EQ(registry.counter("sim.faults.dropped").value(), 3u);
  EXPECT_EQ(registry.counter("sim.faults.delayed").value(), 2u);
  EXPECT_EQ(registry.counter("sim.faults.crashed_nodes").value(), 1u);
  EXPECT_EQ(registry.counter("sim.faults.corrupted").value(), 0u);
  // Counters accumulate across runs, as phase orchestrations need.
  runtime::record_fault_metrics(c, registry);
  EXPECT_EQ(registry.counter("sim.faults.dropped").value(), 6u);
}

}  // namespace
}  // namespace qc::congest
